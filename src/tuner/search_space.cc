/**
 * @file
 * Search-space implementation.
 */

#include "tuner/search_space.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace heteromap {

namespace {

/** Geometric ladder of levels from 1 to max (inclusive). */
std::vector<unsigned>
ladder(unsigned max_value, unsigned steps)
{
    std::vector<unsigned> out;
    if (max_value <= 1) {
        out.push_back(std::max(1u, max_value));
        return out;
    }
    for (unsigned s = 0; s < steps; ++s) {
        double frac = static_cast<double>(s) /
                      static_cast<double>(steps - 1);
        auto level = static_cast<unsigned>(std::lround(
            std::pow(static_cast<double>(max_value), frac)));
        level = std::clamp(level, 1u, max_value);
        if (out.empty() || out.back() != level)
            out.push_back(level);
    }
    return out;
}

} // namespace

MSearchSpace::MSearchSpace(const AcceleratorPair &pair,
                           GridGranularity granularity)
    : pair_(pair), granularity_(granularity)
{
}

std::vector<unsigned>
MSearchSpace::coreLevels() const
{
    return ladder(pair_.multicore.cores,
                  granularity_ == GridGranularity::Fine ? 8 : 5);
}

std::vector<unsigned>
MSearchSpace::tpcLevels() const
{
    return ladder(pair_.multicore.threadsPerCore, 4);
}

std::vector<unsigned>
MSearchSpace::simdLevels() const
{
    return ladder(pair_.multicore.simdWidth, 3);
}

std::vector<unsigned>
MSearchSpace::globalLevels() const
{
    return ladder(pair_.gpu.maxGlobalThreads,
                  granularity_ == GridGranularity::Fine ? 10 : 6);
}

std::vector<unsigned>
MSearchSpace::localLevels() const
{
    return ladder(pair_.gpu.maxLocalThreads,
                  granularity_ == GridGranularity::Fine ? 6 : 4);
}

std::vector<MConfig>
MSearchSpace::enumerate() const
{
    std::vector<MConfig> out;
    const bool fine = granularity_ == GridGranularity::Fine;

    // GPU side: global x local threading.
    for (unsigned global : globalLevels()) {
        for (unsigned local : localLevels()) {
            MConfig c;
            c.accelerator = AcceleratorKind::Gpu;
            c.gpuGlobalThreads = global;
            c.gpuLocalThreads = local;
            out.push_back(c);
        }
    }

    // Multicore side.
    const std::vector<double> spreads =
        fine ? std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0}
             : std::vector<double>{0.0, 0.5, 1.0};
    const std::vector<double> affinities = {0.0, 1.0};
    const std::vector<SchedulePolicy> policies =
        fine ? std::vector<SchedulePolicy>{SchedulePolicy::Static,
                                           SchedulePolicy::Dynamic,
                                           SchedulePolicy::Guided}
             : std::vector<SchedulePolicy>{SchedulePolicy::Static,
                                           SchedulePolicy::Dynamic};
    const std::vector<double> blocktimes =
        fine ? std::vector<double>{1.0, 10.0, 100.0, 1000.0}
             : std::vector<double>{1.0, 200.0};

    for (unsigned cores : coreLevels()) {
        for (unsigned tpc : tpcLevels()) {
            for (unsigned simd : simdLevels()) {
                for (SchedulePolicy policy : policies) {
                    for (double spread : spreads) {
                        for (double affinity : affinities) {
                            for (double blocktime : blocktimes) {
                                MConfig c;
                                c.accelerator =
                                    AcceleratorKind::Multicore;
                                c.cores = cores;
                                c.threadsPerCore = tpc;
                                c.simdWidth = simd;
                                c.schedule = policy;
                                c.chunkSize =
                                    policy == SchedulePolicy::Static
                                        ? 0 : 16;
                                c.placementSpread = spread;
                                c.affinityMovable = affinity;
                                c.blocktimeMs = blocktime;
                                out.push_back(c);
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

MConfig
MSearchSpace::randomConfig(Rng &rng) const
{
    MConfig c;
    if (rng.nextBool()) {
        c.accelerator = AcceleratorKind::Gpu;
        c.gpuGlobalThreads = static_cast<unsigned>(
            rng.nextRange(1, pair_.gpu.maxGlobalThreads));
        c.gpuLocalThreads = static_cast<unsigned>(
            rng.nextRange(1, pair_.gpu.maxLocalThreads));
        return c;
    }
    c.accelerator = AcceleratorKind::Multicore;
    c.cores = static_cast<unsigned>(
        rng.nextRange(1, pair_.multicore.cores));
    c.threadsPerCore = static_cast<unsigned>(
        rng.nextRange(1, pair_.multicore.threadsPerCore));
    c.simdWidth = static_cast<unsigned>(
        rng.nextRange(1, pair_.multicore.simdWidth));
    c.schedule = static_cast<SchedulePolicy>(rng.nextBounded(5));
    c.chunkSize = static_cast<unsigned>(rng.nextRange(0, 256));
    c.placementSpread = rng.nextDouble();
    c.affinityMovable = rng.nextDouble();
    c.blocktimeMs = rng.nextDouble(1.0, 1000.0);
    c.spinCount = rng.nextBool(0.3) ? 200000 : 0;
    c.activeWaitPolicy = rng.nextBool(0.3);
    return c;
}

MConfig
MSearchSpace::neighbor(const MConfig &base, Rng &rng) const
{
    MConfig c = base;
    auto nudge_unsigned = [&](unsigned value, unsigned lo, unsigned hi) {
        double factor = rng.nextBool() ? 0.5 : 2.0;
        auto fresh = static_cast<unsigned>(std::lround(
            std::max(1.0, static_cast<double>(value) * factor)));
        return std::clamp(fresh, lo, hi);
    };

    if (c.accelerator == AcceleratorKind::Gpu) {
        switch (rng.nextBounded(3)) {
          case 0:
            c.gpuGlobalThreads = nudge_unsigned(
                c.gpuGlobalThreads, 1, pair_.gpu.maxGlobalThreads);
            break;
          case 1:
            c.gpuLocalThreads = nudge_unsigned(
                c.gpuLocalThreads, 1, pair_.gpu.maxLocalThreads);
            break;
          default:
            // Jump across the inter-accelerator boundary.
            c = randomConfig(rng);
            break;
        }
        return c;
    }

    switch (rng.nextBounded(8)) {
      case 0:
        c.cores = nudge_unsigned(c.cores, 1, pair_.multicore.cores);
        break;
      case 1:
        c.threadsPerCore = nudge_unsigned(
            c.threadsPerCore, 1, pair_.multicore.threadsPerCore);
        break;
      case 2:
        c.simdWidth = nudge_unsigned(c.simdWidth, 1,
                                     pair_.multicore.simdWidth);
        break;
      case 3:
        c.schedule = static_cast<SchedulePolicy>(rng.nextBounded(5));
        break;
      case 4:
        c.placementSpread =
            std::clamp(c.placementSpread +
                           rng.nextDouble(-0.25, 0.25), 0.0, 1.0);
        break;
      case 5:
        c.affinityMovable =
            std::clamp(c.affinityMovable +
                           rng.nextDouble(-0.5, 0.5), 0.0, 1.0);
        break;
      case 6:
        c.blocktimeMs = std::clamp(
            c.blocktimeMs * (rng.nextBool() ? 0.25 : 4.0), 1.0, 1000.0);
        break;
      default:
        c = randomConfig(rng);
        break;
    }
    return c;
}

} // namespace heteromap
