/**
 * @file
 * Discretized M-choice search space for one multi-accelerator pair.
 * The offline auto-tuner (our OpenTuner substitute) searches this
 * space for the best-performing configuration of each (B, I)
 * combination; the result becomes the training target.
 */

#ifndef HETEROMAP_TUNER_SEARCH_SPACE_HH
#define HETEROMAP_TUNER_SEARCH_SPACE_HH

#include <functional>
#include <vector>

#include "arch/presets.hh"
#include "util/rng.hh"

namespace heteromap {

/** Objective to minimize (modelled seconds, joules, ...). */
using TuneObjective = std::function<double(const MConfig &)>;

/** Result of a tuning run. */
struct TuneResult {
    MConfig best;
    double bestScore = 0.0;
    std::size_t evaluations = 0;
};

/** Enumeration granularity. */
enum class GridGranularity {
    Coarse, //!< fast: ~100s of points, used inside training sweeps
    Fine,   //!< thorough: used for the "ideal" baselines
};

/** Candidate generator over both accelerators' choices. */
class MSearchSpace
{
  public:
    MSearchSpace(const AcceleratorPair &pair,
                 GridGranularity granularity = GridGranularity::Coarse);

    /** All grid candidates (GPU and multicore sides). */
    std::vector<MConfig> enumerate() const;

    /** Uniformly random valid configuration. */
    MConfig randomConfig(Rng &rng) const;

    /** Local perturbation of @p base (one knob nudged). */
    MConfig neighbor(const MConfig &base, Rng &rng) const;

    const AcceleratorPair &pair() const { return pair_; }

  private:
    AcceleratorPair pair_;
    GridGranularity granularity_;

    std::vector<unsigned> coreLevels() const;
    std::vector<unsigned> tpcLevels() const;
    std::vector<unsigned> simdLevels() const;
    std::vector<unsigned> globalLevels() const;
    std::vector<unsigned> localLevels() const;
};

} // namespace heteromap

#endif // HETEROMAP_TUNER_SEARCH_SPACE_HH
