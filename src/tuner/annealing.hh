/**
 * @file
 * Simulated annealing over an MSearchSpace: the middle ground between
 * grid and random search — local refinement with occasional
 * cross-accelerator jumps, mirroring OpenTuner's ensemble behaviour.
 */

#ifndef HETEROMAP_TUNER_ANNEALING_HH
#define HETEROMAP_TUNER_ANNEALING_HH

#include "tuner/search_space.hh"

namespace heteromap {

/** Annealing hyperparameters. */
struct AnnealOptions {
    std::size_t iterations = 600;
    double initialTemperature = 0.4; //!< relative score scale
    double coolingRate = 0.995;
    uint64_t seed = 11;
    std::size_t restarts = 3;
};

/** Minimize @p objective with simulated annealing. */
TuneResult simulatedAnnealing(const MSearchSpace &space,
                              const TuneObjective &objective,
                              AnnealOptions options = {});

} // namespace heteromap

#endif // HETEROMAP_TUNER_ANNEALING_HH
