/**
 * @file
 * Random-search implementation.
 */

#include "tuner/random_search.hh"

#include "util/logging.hh"

namespace heteromap {

TuneResult
randomSearch(const MSearchSpace &space, const TuneObjective &objective,
             std::size_t iterations, uint64_t seed)
{
    HM_ASSERT(iterations > 0, "random search needs >= 1 iteration");
    Rng rng(seed);
    TuneResult result;
    for (std::size_t i = 0; i < iterations; ++i) {
        MConfig candidate = space.randomConfig(rng);
        double score = objective(candidate);
        ++result.evaluations;
        if (i == 0 || score < result.bestScore) {
            result.best = candidate;
            result.bestScore = score;
        }
    }
    return result;
}

} // namespace heteromap
