/**
 * @file
 * Random search over an MSearchSpace: cheap anytime tuner used when a
 * full grid sweep is not worth its cost (e.g. large training sweeps).
 */

#ifndef HETEROMAP_TUNER_RANDOM_SEARCH_HH
#define HETEROMAP_TUNER_RANDOM_SEARCH_HH

#include "tuner/search_space.hh"

namespace heteromap {

/** Sample @p iterations random configurations; keep the best. */
TuneResult randomSearch(const MSearchSpace &space,
                        const TuneObjective &objective,
                        std::size_t iterations, uint64_t seed);

} // namespace heteromap

#endif // HETEROMAP_TUNER_RANDOM_SEARCH_HH
