/**
 * @file
 * Memoizing wrapper around a TuneObjective. A tuning pass for one
 * benchmark case may score the same MConfig several times (per-side
 * grid passes, annealing revisits, near-tie re-ranking); the cache
 * evaluates the underlying oracle once per distinct configuration and
 * serves repeats from memory. invocations() counts actual oracle
 * calls, which makes tuner-evaluation accounting exact.
 *
 * Every instance also mirrors its activity into the process-wide
 * telemetry counters "objective_cache.evaluations" (actual oracle
 * calls) and "objective_cache.hits" (memo serves): the registry view
 * aggregates across all per-case caches, so after a training sweep
 * the evaluations counter delta equals the pipeline's evaluations()
 * sum exactly.
 */

#ifndef HETEROMAP_TUNER_OBJECTIVE_CACHE_HH
#define HETEROMAP_TUNER_OBJECTIVE_CACHE_HH

#include <map>
#include <tuple>

#include "tuner/search_space.hh"

namespace heteromap {

/**
 * Per-case objective memo. Not thread-safe: intended to be owned by
 * the single worker tuning one case, which is how the training sweep
 * keys the cache on (config, case) — one cache instance per case.
 */
class ObjectiveCache
{
  public:
    explicit ObjectiveCache(TuneObjective inner);

    /** Score @p config, consulting the memo first. */
    double operator()(const MConfig &config);

    /** A TuneObjective view of this cache (captures `this`). */
    TuneObjective asObjective();

    /** Distinct configurations evaluated (actual oracle calls). */
    std::size_t invocations() const { return invocations_; }

    /** Calls served from the memo. */
    std::size_t hits() const { return hits_; }

    /** Entries currently memoized (== invocations()). */
    std::size_t size() const { return cache_.size(); }

  private:
    /** Strict-weak-orderable image of every MConfig member. */
    using Key = std::tuple<AcceleratorKind, unsigned, unsigned, double,
                           double, double, SchedulePolicy, unsigned,
                           unsigned, bool, unsigned, unsigned, bool,
                           bool, bool, unsigned, unsigned, unsigned>;

    static Key keyOf(const MConfig &config);

    TuneObjective inner_;
    std::map<Key, double> cache_;
    std::size_t invocations_ = 0;
    std::size_t hits_ = 0;
};

} // namespace heteromap

#endif // HETEROMAP_TUNER_OBJECTIVE_CACHE_HH
