/**
 * @file
 * Simulated-annealing implementation.
 */

#include "tuner/annealing.hh"

#include <cmath>

#include "util/logging.hh"

namespace heteromap {

TuneResult
simulatedAnnealing(const MSearchSpace &space, const TuneObjective &objective,
                   AnnealOptions options)
{
    HM_ASSERT(options.iterations > 0, "annealing needs >= 1 iteration");
    HM_ASSERT(options.restarts > 0, "annealing needs >= 1 restart");
    Rng rng(options.seed);

    TuneResult global;
    bool global_first = true;

    for (std::size_t restart = 0; restart < options.restarts; ++restart) {
        MConfig current = space.randomConfig(rng);
        double current_score = objective(current);
        ++global.evaluations;
        if (global_first || current_score < global.bestScore) {
            global.best = current;
            global.bestScore = current_score;
            global_first = false;
        }

        double temperature =
            options.initialTemperature * std::max(current_score, 1e-12);
        for (std::size_t i = 0; i < options.iterations; ++i) {
            MConfig candidate = space.neighbor(current, rng);
            double score = objective(candidate);
            ++global.evaluations;

            double delta = score - current_score;
            bool accept = delta <= 0.0;
            if (!accept && temperature > 0.0) {
                accept = rng.nextDouble() <
                         std::exp(-delta / temperature);
            }
            if (accept) {
                current = candidate;
                current_score = score;
            }
            if (score < global.bestScore) {
                global.best = candidate;
                global.bestScore = score;
            }
            temperature *= options.coolingRate;
        }
    }
    return global;
}

} // namespace heteromap
