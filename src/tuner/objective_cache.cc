/**
 * @file
 * Objective-cache implementation.
 */

#include "tuner/objective_cache.hh"

#include <utility>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace heteromap {

ObjectiveCache::ObjectiveCache(TuneObjective inner)
    : inner_(std::move(inner))
{
    HM_ASSERT(inner_ != nullptr, "objective cache needs an objective");
}

ObjectiveCache::Key
ObjectiveCache::keyOf(const MConfig &c)
{
    return Key{c.accelerator,     c.cores,
               c.threadsPerCore,  c.blocktimeMs,
               c.placementSpread, c.affinityMovable,
               c.schedule,        c.simdWidth,
               c.chunkSize,       c.nestedParallelism,
               c.maxActiveLevels, c.spinCount,
               c.activeWaitPolicy, c.procBindClose,
               c.dynamicTeams,    c.stackSizeKb,
               c.gpuGlobalThreads, c.gpuLocalThreads};
}

double
ObjectiveCache::operator()(const MConfig &config)
{
    const Key key = keyOf(config);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++hits_;
        HM_COUNTER_INC("objective_cache.hits");
        return it->second;
    }
    // Evaluate before inserting so a throwing objective leaves no
    // stale entry behind.
    double value = inner_(config);
    ++invocations_;
    HM_COUNTER_INC("objective_cache.evaluations");
    cache_.emplace(key, value);
    return value;
}

TuneObjective
ObjectiveCache::asObjective()
{
    return [this](const MConfig &config) { return (*this)(config); };
}

} // namespace heteromap
