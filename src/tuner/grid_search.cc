/**
 * @file
 * Grid-search implementation.
 */

#include "tuner/grid_search.hh"

#include "util/logging.hh"

namespace heteromap {

TuneResult
gridSearch(const MSearchSpace &space, const TuneObjective &objective)
{
    return gridSearch(space.enumerate(), objective);
}

TuneResult
gridSearch(const std::vector<MConfig> &candidates,
           const TuneObjective &objective)
{
    TuneResult result;
    bool first = true;
    for (const MConfig &candidate : candidates) {
        double score = objective(candidate);
        ++result.evaluations;
        if (first || score < result.bestScore) {
            result.best = candidate;
            result.bestScore = score;
            first = false;
        }
    }
    HM_ASSERT(!first, "grid search over an empty space");
    return result;
}

TuneResult
gridSearchSide(const std::vector<MConfig> &candidates,
               const TuneObjective &objective, AcceleratorKind side)
{
    TuneResult result;
    bool first = true;
    for (const MConfig &candidate : candidates) {
        if (candidate.accelerator != side)
            continue;
        double score = objective(candidate);
        ++result.evaluations;
        if (first || score < result.bestScore) {
            result.best = candidate;
            result.bestScore = score;
            first = false;
        }
    }
    HM_ASSERT(!first, "no candidates on the requested accelerator side");
    return result;
}

} // namespace heteromap
