/**
 * @file
 * Grid-search implementation.
 */

#include "tuner/grid_search.hh"

#include "util/logging.hh"

namespace heteromap {

TuneResult
gridSearch(const MSearchSpace &space, const TuneObjective &objective)
{
    TuneResult result;
    bool first = true;
    for (const MConfig &candidate : space.enumerate()) {
        double score = objective(candidate);
        ++result.evaluations;
        if (first || score < result.bestScore) {
            result.best = candidate;
            result.bestScore = score;
            first = false;
        }
    }
    HM_ASSERT(!first, "grid search over an empty space");
    return result;
}

} // namespace heteromap
