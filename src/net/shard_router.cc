/**
 * @file
 * Consistent-hash ring implementation. Build is O(S * V log(S * V))
 * once at server start; route is one binary search.
 */

#include "net/shard_router.hh"

#include <algorithm>

#include "util/logging.hh"

namespace heteromap {
namespace net {

uint64_t
mix64(uint64_t value)
{
    value += 0x9e3779b97f4a7c15ULL;
    value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
    value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
    return value ^ (value >> 31);
}

ShardRouter::ShardRouter(std::size_t shards, std::size_t vnodes)
    : shards_(shards), vnodes_(vnodes)
{
    HM_ASSERT(shards >= 1, "ShardRouter needs >= 1 shard");
    HM_ASSERT(vnodes >= 1, "ShardRouter needs >= 1 vnode per shard");
    ring_.reserve(shards * vnodes);
    for (std::size_t shard = 0; shard < shards; ++shard) {
        // Per-shard stream: mix the shard id once, then derive each
        // replica point from it. Two different (shard, replica)
        // pairs colliding on a point hash is astronomically rare;
        // ties are broken toward the lower shard by the sort below,
        // deterministically.
        const uint64_t shard_base = mix64(0x5ca1ab1eULL + shard);
        for (std::size_t replica = 0; replica < vnodes; ++replica) {
            const uint64_t hash =
                mix64(shard_base ^ mix64(0xfeedULL + replica));
            ring_.push_back({hash, static_cast<uint32_t>(shard)});
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const Point &a, const Point &b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.shard < b.shard;
              });
}

std::size_t
ShardRouter::route(uint64_t key) const
{
    const uint64_t hash = mix64(key);
    // First ring point at or after the key's hash, wrapping to the
    // ring's first point past the top.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), hash,
        [](const Point &point, uint64_t value) {
            return point.hash < value;
        });
    if (it == ring_.end())
        it = ring_.begin();
    return it->shard;
}

} // namespace net
} // namespace heteromap
