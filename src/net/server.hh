/**
 * @file
 * NetServer: the network-facing, sharded serving tier. One thin
 * binary-RPC front-end (net/wire.hh frames over loopback TCP or a
 * Unix socket) fronting N in-process PredictionService shards.
 *
 * Threading model:
 *
 *  - one event-loop thread runs a level-triggered, non-blocking
 *    epoll over the listen socket, every connection, and a wakeup
 *    eventfd. It accepts, reads, parses frames zero-copy out of the
 *    per-connection read buffer, runs admission, resolves the graph
 *    catalogue, routes to a shard, and submits — it never blocks on
 *    prediction work (shard queues run Reject admission, so submit
 *    is always immediate);
 *  - one harvester thread per shard turns the shard's response
 *    futures (FIFO per shard, matching the shard queue's order)
 *    into encoded response frames and posts them to the loop
 *    through a mutex-guarded outbox + eventfd wakeup;
 *  - writes go through per-connection write buffers drained by the
 *    loop (EPOLLOUT armed only while a buffer is non-empty). A
 *    connection whose buffered backlog exceeds
 *    maxWriteBacklogBytes is a slow reader and is disconnected —
 *    one stalled client cannot pin server memory.
 *
 * Shard routing is a consistent-hash ring (net/shard_router.hh)
 * keyed by the graph's structural fingerprint, so a given graph
 * always lands on the shard whose GraphStatsCache and micro-batcher
 * already know it, and shard-count changes move only ~1/(N+1) of
 * the keys. Requests reference graphs by catalogue name; the server
 * fingerprints each graph once at registration.
 *
 * Multi-tenant admission (net/admission.hh) runs before any work:
 * per-client token buckets plus two priority lanes. Quota rejections
 * answer with ShedReason::QuotaExceeded without touching a shard.
 *
 * Telemetry: serve.net.accepted.* / .quota_rejected.* / .shed.*
 * lane counters (admission), serve.net.connections gauge,
 * serve.net.frames_received / .frames_sent / .bad_frames /
 * .slow_reader_disconnects counters, and the serve.net.frame_bytes
 * / serve.net.wire_ms histograms (frame sizes; receive-to-encoded
 * on-wire service latency).
 */

#ifndef HETEROMAP_NET_SERVER_HH
#define HETEROMAP_NET_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/admission.hh"
#include "net/shard_router.hh"
#include "net/socket.hh"
#include "net/wire.hh"
#include "serve/prediction_service.hh"

namespace heteromap {
namespace net {

/** Server tunables. */
struct ServerOptions {
    /** Where to listen (see parseEndpoint). */
    Endpoint endpoint{};

    /** PredictionService shards (>= 1). */
    std::size_t shards = 2;

    /** Ring points per shard (net/shard_router.hh). */
    std::size_t vnodes = ShardRouter::kDefaultVnodes;

    /**
     * Per-shard service template. The server forces admission to
     * Reject (the loop must never block in submit) and gives each
     * shard a distinct stats metrics prefix
     * ("serve.shard<k>.stats_cache") so per-shard hit rates are
     * individually observable (see ServiceOptions).
     */
    serve::ServiceOptions shard{};

    /** Multi-tenant admission quotas and lanes. */
    AdmissionOptions admission{};

    /** Connection bound; accepts beyond it are dropped. */
    std::size_t maxConnections = 1024;

    /** Slow-reader disconnect threshold, bytes of buffered writes. */
    std::size_t maxWriteBacklogBytes = 4u << 20;
};

/** Monotonic transport-level accounting (admission has its own). */
struct ServerStats {
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsDropped = 0;   //!< at the maxConnections cap
    uint64_t slowReaderDisconnects = 0;
    uint64_t framesReceived = 0;
    uint64_t framesSent = 0; //!< frames fully flushed to a socket
    uint64_t badFrames = 0;            //!< malformed header or payload
    uint64_t requestsSubmitted = 0;    //!< admitted into a shard
    uint64_t unknownGraph = 0;
    uint64_t unknownWorkload = 0;
};

/** The sharded network front-end over one ModelRegistry. */
class NetServer
{
  public:
    /**
     * @param models  Registry shared by every shard (hot-swaps are
     *                fleet-wide and epoch-stamped per response).
     * @param options Tunables; nothing starts until start().
     */
    NetServer(serve::ModelRegistry &models, ServerOptions options);

    /** stop()s if still running. */
    ~NetServer();

    NetServer(const NetServer &) = delete;
    NetServer &operator=(const NetServer &) = delete;

    /**
     * Register @p graph under @p name in the catalogue; requests
     * reference it by name. Fingerprinted once here; re-registering
     * a name replaces the entry. Safe while serving.
     */
    void registerGraph(const std::string &name,
                       std::shared_ptr<const Graph> graph);

    /**
     * Bind, listen, and start the loop + harvester threads.
     * @return the bound endpoint (a TCP port-0 request resolves to
     * the kernel's pick). Recoverable on bind/listen failure.
     */
    Result<Endpoint> start();

    /**
     * Stop accepting, tear down connections, join every thread, and
     * close the shards (draining their queues). Idempotent.
     */
    void stop();

    /** Shard that @p graph routes to (for tests and planning). */
    std::size_t shardForGraph(const Graph &graph) const;

    /** Per-shard service access (tests, statusz). */
    serve::PredictionService &shard(std::size_t index);
    std::size_t shards() const { return services_.size(); }

    /** statusz() of every shard, in shard order. */
    std::vector<serve::ServiceStatus> shardStatuses() const;

    /** Fleet statusz document (serve::fleetStatuszJson). */
    std::string statuszJson() const;

    ServerStats stats() const;
    NetAdmission &admission() { return admission_; }
    const ShardRouter &router() const { return router_; }

  private:
    struct Connection {
        OwnedFd fd;
        uint64_t id = 0;
        std::string rbuf;
        std::size_t rpos = 0; //!< parse cursor into rbuf
        std::string wbuf;
        std::size_t wpos = 0; //!< flush cursor into wbuf
        bool wantWrite = false;

        /**
         * Marked instead of closing in-place: writeReady can fail
         * (EPIPE, backlog overflow) while a caller further up the
         * stack still holds this Connection&, so the erase from
         * connections_ is deferred to the top of the event loop /
         * readReady, after every reference is dropped.
         */
        bool dead = false;

        /** @name Flush-time frame accounting (framesSent). @{ */
        uint64_t wqueued = 0;  //!< total bytes ever queued
        uint64_t wflushed = 0; //!< total bytes handed to the socket
        std::deque<uint64_t> frameEnds; //!< wqueued offset per frame
        /** @} */
    };

    struct CatalogEntry {
        std::shared_ptr<const Graph> graph;
        uint64_t routeKey = 0; //!< mixFingerprint of the structure
    };

    /** One submitted request awaiting its shard's answer. */
    struct InFlight {
        uint64_t connId = 0;
        uint64_t requestId = 0;
        int64_t receivedNs = 0;
        std::future<serve::ServeResponse> future;
    };

    /** FIFO handoff from the loop to one shard's harvester. */
    struct CompletionQueue {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<InFlight> queue;
        bool closed = false;

        void push(InFlight in_flight);
        bool pop(InFlight &out);
        void close();
    };

    serve::ModelRegistry &models_;
    ServerOptions options_;
    ShardRouter router_;
    NetAdmission admission_;

    std::vector<std::unique_ptr<serve::PredictionService>> services_;
    std::vector<std::unique_ptr<CompletionQueue>> completions_;
    std::vector<std::thread> harvesters_;

    mutable std::mutex catalog_mutex_;
    std::unordered_map<std::string, CatalogEntry> catalog_;
    std::unordered_map<std::string, std::shared_ptr<const Workload>>
        workloads_;

    OwnedFd listen_fd_;
    OwnedFd wake_fd_; //!< eventfd: outbox posts and stop()
    OwnedFd epoll_fd_;
    std::thread loop_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::mutex lifecycle_mutex_; //!< start/stop idempotence

    /** Loop-thread-only connection state. */
    std::unordered_map<int, Connection> connections_;
    std::unordered_map<uint64_t, int> conn_fd_by_id_;
    uint64_t next_conn_id_ = 1;

    /** Harvester -> loop handoff of encoded response bytes. */
    std::mutex outbox_mutex_;
    std::vector<std::pair<uint64_t, std::string>> outbox_;

    /** @name ServerStats counters (atomic: read off-loop). @{ */
    std::atomic<uint64_t> connections_accepted_{0};
    std::atomic<uint64_t> connections_dropped_{0};
    std::atomic<uint64_t> slow_reader_disconnects_{0};
    std::atomic<uint64_t> frames_received_{0};
    std::atomic<uint64_t> frames_sent_{0};
    std::atomic<uint64_t> bad_frames_{0};
    std::atomic<uint64_t> requests_submitted_{0};
    std::atomic<uint64_t> unknown_graph_{0};
    std::atomic<uint64_t> unknown_workload_{0};
    /** @} */

    void loopThread();
    void harvesterThread(std::size_t shard_index);

    void acceptReady();
    void readReady(Connection &conn);
    void writeReady(Connection &conn);

    /**
     * Parse every complete frame in @p conn's read buffer.
     * @return false when the connection must close (framing lost).
     */
    bool parseFrames(Connection &conn);
    bool dispatchFrame(Connection &conn, const FrameHeader &header,
                       std::string_view payload);
    void handlePredict(Connection &conn, const FrameHeader &header,
                       std::string_view payload);

    /** Queue @p bytes on @p conn and flush what the socket takes. */
    void sendOnConn(Connection &conn, std::string bytes);

    /** Outbox drain: route posted responses to live connections. */
    void drainOutbox();

    void closeConnection(int fd);
    void updateEpoll(Connection &conn);
    void postResponse(uint64_t conn_id, std::string bytes);

    /** Immediate response helper for loop-thread answers. */
    void respondNow(Connection &conn, uint64_t request_id,
                    const WireResponse &response);
};

/** Convert a served response into its wire form. */
WireResponse toWire(const serve::ServeResponse &response);

/** Convert a decoded wire response back into a ServeResponse. */
serve::ServeResponse fromWire(const WireResponse &wire);

} // namespace net
} // namespace heteromap

#endif // HETEROMAP_NET_SERVER_HH
