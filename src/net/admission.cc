/**
 * @file
 * Token-bucket admission implementation. One mutex guards the client
 * table, the lane bucket, and the counters — admission runs once per
 * request on the event-loop thread, so the serialized section is a
 * handful of arithmetic ops, not a throughput concern next to the
 * syscall that delivered the frame.
 */

#include "net/admission.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace heteromap {
namespace net {

const char *
laneName(Lane lane)
{
    return lane == Lane::Priority ? "priority" : "normal";
}

NetAdmission::NetAdmission(AdmissionOptions options)
    : options_(options)
{
    options_.clientRatePerSec = std::max(0.0, options_.clientRatePerSec);
    options_.clientBurst = std::max(1.0, options_.clientBurst);
    options_.maxTrackedClients =
        std::max<std::size_t>(1, options_.maxTrackedClients);
    normal_lane_.ratePerSec = options_.normalLaneRatePerSec;
    normal_lane_.burst = std::max(1.0, options_.normalLaneBurst);
    normal_lane_.tokens = normal_lane_.burst;

    // Counter registration takes the registry mutex; do it once here
    // so admit() only dereferences. The slots are per-instance —
    // concurrent NetAdmissions must not share lazily-filled caches.
    for (std::size_t ix = 0; ix < kNumLanes; ++ix) {
        const char *lane = laneName(static_cast<Lane>(ix));
        auto &registry = telemetry::registry();
        accepted_counters_[ix] = &registry.counter(
            std::string("serve.net.accepted.") + lane);
        quota_rejected_counters_[ix] = &registry.counter(
            std::string("serve.net.quota_rejected.") + lane);
        lane_shed_counters_[ix] = &registry.counter(
            std::string("serve.net.shed.") + lane);
    }
}

void
NetAdmission::refill(Bucket &bucket, int64_t now_ns)
{
    if (now_ns <= bucket.lastRefillNs) {
        bucket.lastRefillNs = std::max(bucket.lastRefillNs, now_ns);
        return;
    }
    const double elapsed_s =
        static_cast<double>(now_ns - bucket.lastRefillNs) * 1e-9;
    bucket.tokens = std::min(bucket.burst,
                             bucket.tokens +
                                 elapsed_s * bucket.ratePerSec);
    bucket.lastRefillNs = now_ns;
}

bool
NetAdmission::tryTake(Bucket &bucket, int64_t now_ns)
{
    refill(bucket, now_ns);
    if (bucket.tokens < 1.0)
        return false;
    bucket.tokens -= 1.0;
    return true;
}

NetAdmission::Bucket &
NetAdmission::clientBucket(uint64_t client_id, int64_t now_ns)
{
    auto it = clients_.find(client_id);
    if (it != clients_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return it->second.bucket;
    }
    // Evict the least-recently-seen default-quota client beyond the
    // bound; pinned (explicit-quota) clients are never evicted, so
    // an id churn cannot silently drop an operator-set quota.
    while (clients_.size() >= options_.maxTrackedClients &&
           !lru_.empty()) {
        bool evicted = false;
        for (auto lit = lru_.rbegin(); lit != lru_.rend(); ++lit) {
            auto victim = clients_.find(*lit);
            if (victim != clients_.end() &&
                !victim->second.bucket.pinned) {
                lru_.erase(victim->second.lruIt);
                clients_.erase(victim);
                evicted = true;
                break;
            }
        }
        if (!evicted)
            break; // every tracked client is pinned
    }
    lru_.push_front(client_id);
    ClientEntry entry;
    entry.bucket.ratePerSec = options_.clientRatePerSec;
    entry.bucket.burst = options_.clientBurst;
    entry.bucket.tokens = options_.clientBurst;
    entry.bucket.lastRefillNs = now_ns;
    entry.lruIt = lru_.begin();
    return clients_.emplace(client_id, std::move(entry))
        .first->second.bucket;
}

AdmissionDecision
NetAdmission::admit(uint64_t client_id, Lane lane, int64_t now_ns)
{
    const std::size_t lane_ix = static_cast<std::size_t>(lane);
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket &bucket = clientBucket(client_id, now_ns);
    if (!tryTake(bucket, now_ns)) {
        ++quota_rejected_[lane_ix];
        quota_rejected_counters_[lane_ix]->add(1);
        return AdmissionDecision::QuotaRejected;
    }
    if (lane == Lane::Normal && normal_lane_.ratePerSec > 0.0 &&
        !tryTake(normal_lane_, now_ns)) {
        ++lane_shed_[lane_ix];
        lane_shed_counters_[lane_ix]->add(1);
        return AdmissionDecision::LaneShed;
    }
    ++accepted_[lane_ix];
    accepted_counters_[lane_ix]->add(1);
    return AdmissionDecision::Admitted;
}

void
NetAdmission::setClientQuota(uint64_t client_id, double rate_per_sec,
                             double burst)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Bucket &bucket = clientBucket(client_id, 0);
    bucket.ratePerSec = std::max(0.0, rate_per_sec);
    bucket.burst = std::max(1.0, burst);
    bucket.tokens = bucket.burst;
    bucket.pinned = true;
}

uint64_t
NetAdmission::accepted(Lane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return accepted_[static_cast<std::size_t>(lane)];
}

uint64_t
NetAdmission::quotaRejected(Lane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quota_rejected_[static_cast<std::size_t>(lane)];
}

uint64_t
NetAdmission::laneShed(Lane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lane_shed_[static_cast<std::size_t>(lane)];
}

std::size_t
NetAdmission::trackedClients() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return clients_.size();
}

} // namespace net
} // namespace heteromap
