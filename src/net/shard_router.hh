/**
 * @file
 * Consistent-hash shard router: maps graph fingerprints onto
 * PredictionService shards so that a given graph always lands on the
 * same shard — its GraphStatsCache entry and micro-batcher stay hot —
 * and so that changing the shard count moves only ~1/(N+1) of the
 * keys instead of reshuffling everything (classic hash ring with
 * virtual nodes; modulo routing would remap nearly every key).
 *
 * The ring is deterministic: points derive from (shard index,
 * replica index) through a fixed 64-bit mixer, so every process —
 * server, tests, an offline capacity planner — builds the identical
 * ring for a given (shards, vnodes) pair. Routing keys are the
 * mixFingerprint() of the graph's structural fingerprint
 * (graph/stats_cache.hh), re-mixed once more to decorrelate from the
 * ring-point hashes.
 */

#ifndef HETEROMAP_NET_SHARD_ROUTER_HH
#define HETEROMAP_NET_SHARD_ROUTER_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace heteromap {
namespace net {

/** SplitMix64 finalizer — the repo's standard cheap 64-bit mixer. */
uint64_t mix64(uint64_t value);

/** Deterministic consistent-hash ring over shard indices. */
class ShardRouter
{
  public:
    /** Ring points per shard; more = smoother key balance. */
    static constexpr std::size_t kDefaultVnodes = 64;

    /**
     * @param shards Shard count (>= 1).
     * @param vnodes Virtual nodes per shard (>= 1).
     */
    explicit ShardRouter(std::size_t shards,
                         std::size_t vnodes = kDefaultVnodes);

    /** Shard owning @p key (e.g. mixFingerprint of a graph). */
    std::size_t route(uint64_t key) const;

    std::size_t shards() const { return shards_; }
    std::size_t vnodes() const { return vnodes_; }

    /** Ring size (shards * vnodes, minus point-hash collisions). */
    std::size_t points() const { return ring_.size(); }

  private:
    struct Point {
        uint64_t hash;
        uint32_t shard;
    };

    std::size_t shards_;
    std::size_t vnodes_;
    std::vector<Point> ring_; //!< sorted by hash
};

} // namespace net
} // namespace heteromap

#endif // HETEROMAP_NET_SHARD_ROUTER_HH
