/**
 * @file
 * POSIX socket helpers. Linux-only, like the epoll event loop that
 * sits on top (the CI fleet and the deployment target are Linux).
 */

#include "net/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace heteromap {
namespace net {

void
OwnedFd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

std::string
Endpoint::toString() const
{
    if (family == Family::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

Result<Endpoint>
parseEndpoint(const std::string &spec)
{
    Endpoint endpoint;
    std::string rest = spec;
    if (rest.rfind("unix:", 0) == 0) {
        endpoint.family = Endpoint::Family::Unix;
        endpoint.path = rest.substr(5);
        if (endpoint.path.empty())
            return makeError(ErrorCode::Parse, 0,
                             "empty unix socket path in '", spec, "'");
        if (endpoint.path.size() >= sizeof(sockaddr_un{}.sun_path))
            return makeError(ErrorCode::OutOfRange, 0,
                             "unix socket path too long (",
                             endpoint.path.size(), " bytes): '", spec,
                             "'");
        return endpoint;
    }
    if (rest.rfind("tcp:", 0) == 0)
        rest = rest.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size())
        return makeError(ErrorCode::Parse, 0, "endpoint '", spec,
                         "' is not tcp:HOST:PORT or unix:PATH");
    endpoint.family = Endpoint::Family::Tcp;
    endpoint.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    char *end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == port_text.c_str() || *end != '\0' || port < 0 ||
        port > 65535)
        return makeError(ErrorCode::OutOfRange, 0, "bad port '",
                         port_text, "' in endpoint '", spec, "'");
    endpoint.port = static_cast<uint16_t>(port);
    return endpoint;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

namespace {

Result<OwnedFd>
socketFor(const Endpoint &endpoint)
{
    const int family =
        endpoint.family == Endpoint::Family::Unix ? AF_UNIX : AF_INET;
    OwnedFd fd(::socket(family, SOCK_STREAM, 0));
    if (!fd.valid())
        return makeError(ErrorCode::Unavailable, 0,
                         "socket() failed: ", std::strerror(errno));
    return fd;
}

/** Fill @p storage for @p endpoint; @return the address length. */
Result<socklen_t>
fillAddress(const Endpoint &endpoint, sockaddr_storage &storage)
{
    std::memset(&storage, 0, sizeof(storage));
    if (endpoint.family == Endpoint::Family::Unix) {
        auto *addr = reinterpret_cast<sockaddr_un *>(&storage);
        addr->sun_family = AF_UNIX;
        std::strncpy(addr->sun_path, endpoint.path.c_str(),
                     sizeof(addr->sun_path) - 1);
        return static_cast<socklen_t>(sizeof(sockaddr_un));
    }
    auto *addr = reinterpret_cast<sockaddr_in *>(&storage);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(endpoint.port);
    if (::inet_pton(AF_INET, endpoint.host.c_str(),
                    &addr->sin_addr) != 1)
        return makeError(ErrorCode::Parse, 0, "bad IPv4 address '",
                         endpoint.host, "'");
    return static_cast<socklen_t>(sizeof(sockaddr_in));
}

} // namespace

Result<OwnedFd>
listenOn(const Endpoint &endpoint, int backlog)
{
    Result<OwnedFd> fd = socketFor(endpoint);
    if (!fd)
        return fd.error();
    OwnedFd sock = std::move(fd).value();

    if (endpoint.family == Endpoint::Family::Unix) {
        // A previous instance that died uncleanly leaves the socket
        // file behind; binding over it needs the unlink.
        ::unlink(endpoint.path.c_str());
    } else {
        const int one = 1;
        ::setsockopt(sock.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
    }

    sockaddr_storage storage;
    Result<socklen_t> len = fillAddress(endpoint, storage);
    if (!len)
        return len.error();
    if (::bind(sock.get(), reinterpret_cast<sockaddr *>(&storage),
               len.value()) != 0)
        return makeError(ErrorCode::Unavailable, 0, "bind(",
                         endpoint.toString(),
                         ") failed: ", std::strerror(errno));
    if (::listen(sock.get(), backlog) != 0)
        return makeError(ErrorCode::Unavailable, 0, "listen(",
                         endpoint.toString(),
                         ") failed: ", std::strerror(errno));
    if (!setNonBlocking(sock.get()))
        return makeError(ErrorCode::Unavailable, 0,
                         "O_NONBLOCK failed: ", std::strerror(errno));
    return sock;
}

Result<Endpoint>
localEndpoint(int listen_fd, const Endpoint &requested)
{
    if (requested.family == Endpoint::Family::Unix)
        return requested;
    sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return makeError(ErrorCode::Unavailable, 0,
                         "getsockname failed: ", std::strerror(errno));
    Endpoint bound = requested;
    bound.port = ntohs(addr.sin_port);
    return bound;
}

Result<OwnedFd>
connectTo(const Endpoint &endpoint)
{
    Result<OwnedFd> fd = socketFor(endpoint);
    if (!fd)
        return fd.error();
    OwnedFd sock = std::move(fd).value();

    sockaddr_storage storage;
    Result<socklen_t> len = fillAddress(endpoint, storage);
    if (!len)
        return len.error();
    if (::connect(sock.get(), reinterpret_cast<sockaddr *>(&storage),
                  len.value()) != 0)
        return makeError(ErrorCode::Unavailable, 0, "connect(",
                         endpoint.toString(),
                         ") failed: ", std::strerror(errno));
    if (endpoint.family == Endpoint::Family::Tcp) {
        // Request/response frames are small; Nagle would add a full
        // RTT of batching delay to every response.
        const int one = 1;
        ::setsockopt(sock.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    }
    return sock;
}

Result<std::size_t>
sendAll(int fd, const char *data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n =
            ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return makeError(ErrorCode::Unavailable, 0,
                             "send failed after ", sent, "/", size,
                             " bytes: ", std::strerror(errno));
        }
        sent += static_cast<std::size_t>(n);
    }
    return sent;
}

Result<std::size_t>
recvAll(int fd, char *data, std::size_t size)
{
    std::size_t received = 0;
    while (received < size) {
        const ssize_t n =
            ::recv(fd, data + received, size - received, 0);
        if (n == 0)
            return makeError(ErrorCode::Unavailable, 0,
                             "connection closed after ", received, "/",
                             size, " bytes");
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return makeError(ErrorCode::Unavailable, 0,
                             "recv failed after ", received, "/", size,
                             " bytes: ", std::strerror(errno));
        }
        received += static_cast<std::size_t>(n);
    }
    return received;
}

} // namespace net
} // namespace heteromap
