/**
 * @file
 * Versioned binary wire codec for the network serving tier — the
 * framing half of src/net/'s RPC front-end (net/server.hh speaks it
 * on the accept side, net/client.hh on the connect side).
 *
 * Every message is one length-prefixed frame:
 *
 *   offset  size  field
 *   ------  ----  -----------------------------------------------
 *        0     4  magic       0x484D5250 ("HMRP", little-endian)
 *        4     1  version     kWireVersion (skew is recoverable)
 *        5     1  type        FrameType
 *        6     2  flags       FrameFlag bits
 *        8     8  requestId   client-chosen correlation id
 *       16     4  payloadLen  payload bytes following the header
 *
 * followed by payloadLen bytes of type-specific payload. All integers
 * are little-endian regardless of host order; doubles travel as their
 * IEEE-754 bit pattern in a u64. Strings are u16 length + bytes.
 *
 * Decode discipline: the transport accumulates bytes until a full
 * header (kHeaderBytes) is buffered, decodes it, then accumulates
 * payloadLen more before decoding the payload — "not enough bytes
 * yet" is a buffering state, never an error. Everything else
 * malformed (bad magic, version skew, unknown frame type, oversized
 * declared length, truncated payload, payload/declared-length
 * mismatch) is a recoverable util/errors.hh Result error: the
 * connection handler sheds the frame (and, since framing is lost,
 * the connection) without taking the process down.
 *
 * Zero-copy parse: decoded request/response structs hold
 * std::string_view fields that point into the caller's buffer — the
 * event loop parses straight out of its per-connection read buffer
 * and only copies the few small strings that outlive the frame.
 */

#ifndef HETEROMAP_NET_WIRE_HH
#define HETEROMAP_NET_WIRE_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "util/errors.hh"

namespace heteromap {
namespace net {

/** "HMRP" little-endian. */
inline constexpr uint32_t kWireMagic = 0x50524D48u;

/** Current protocol version; bump on any layout change. */
inline constexpr uint8_t kWireVersion = 1;

/** Fixed frame-header size in bytes. */
inline constexpr std::size_t kHeaderBytes = 20;

/**
 * Payload-size ceiling. A declared length above this is rejected
 * before any allocation, so a hostile or corrupt length prefix can
 * never balloon a connection buffer.
 */
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

/** Frame kinds carried over one connection. */
enum class FrameType : uint8_t {
    PredictRequest = 1,  //!< client -> server: one ServeRequest
    PredictResponse = 2, //!< server -> client: the ServeResponse
    Ping = 3,            //!< client -> server liveness probe
    Pong = 4,            //!< server -> client probe echo
    Statusz = 5,         //!< client -> server: fleet status ask
    StatuszResponse = 6, //!< server -> client: statusz JSON blob
};

/** @return e.g. "predict-request"; "unknown" for invalid values. */
const char *frameTypeName(FrameType type);

/** Header flag bits. */
enum FrameFlag : uint16_t {
    kFlagSupervised = 1u << 0, //!< route through the supervised lane
    kFlagPriority = 1u << 1,   //!< admission priority lane
};

/** Decoded frame header. */
struct FrameHeader {
    uint8_t version = kWireVersion;
    FrameType type = FrameType::Ping;
    uint16_t flags = 0;
    uint64_t requestId = 0;
    uint32_t payloadLen = 0;
};

/**
 * One prediction request as it travels on the wire. The graph rides
 * as a catalogue name (the server resolves it against its registered
 * graph set and routes by the resolved fingerprint) — shipping whole
 * CSR arrays per request would defeat the point of a warm,
 * fingerprint-routed stats cache.
 */
struct WireRequest {
    uint64_t clientId = 0;     //!< admission-quota key

    /**
     * Encode-side inputs only: encodeRequest() lifts these into the
     * header's kFlagSupervised/kFlagPriority bits. decodeRequest()
     * sees just the payload, so readers take them from FrameHeader
     * ::flags, not from the decoded struct.
     */
    bool supervised = false;
    bool priority = false;
    double deadlineMs = 0.0;   //!< queueing budget; 0 = none
    uint32_t sweeps = 0;       //!< MeasureOptions::sweeps (0 = default)
    uint64_t seed = 0;         //!< MeasureOptions::seed (0 = default)
    std::string_view workload; //!< registry name, e.g. "PR"
    std::string_view graph;    //!< server-side catalogue name
};

/** One prediction response as it travels on the wire. */
struct WireResponse {
    uint8_t status = 0;          //!< serve::ServeStatus
    uint8_t shedReason = 0;      //!< serve::ShedReason
    uint8_t degradationLevel = 0;
    bool servedByFallback = false;
    uint64_t modelEpoch = 0;
    uint8_t accelerator = 0;     //!< deployed AcceleratorKind
    uint32_t threads = 0;        //!< threads on that accelerator
    double predictedSeconds = 0.0;
    double overheadMs = 0.0;
    double queueMs = 0.0;
    double serviceMs = 0.0;
    uint32_t batchSize = 0;
    bool hasError = false;
    uint8_t errorCode = 0;       //!< ErrorCode when hasError
    std::string_view errorMessage;
};

/** @name Encoding (appends one whole frame to @p out). @{ */
void encodeRequest(uint64_t request_id, const WireRequest &request,
                   std::string &out);
void encodeResponse(uint64_t request_id, const WireResponse &response,
                    std::string &out);
void encodePing(uint64_t request_id, std::string &out);
void encodePong(uint64_t request_id, std::string &out);
void encodeStatusz(uint64_t request_id, std::string &out);

/**
 * A @p json document over kMaxPayloadBytes is replaced by a small
 * {"statusz_truncated":true,...} stub — the encoder never emits a
 * frame the peer's decodeHeader would reject as OutOfRange.
 */
void encodeStatuszResponse(uint64_t request_id, std::string_view json,
                           std::string &out);
/** @} */

/**
 * Decode a header from the first kHeaderBytes of @p buffer (the
 * caller guarantees at least that many bytes). Bad magic, version
 * skew, an unknown frame type, and a payload length above
 * kMaxPayloadBytes are recoverable errors.
 */
Result<FrameHeader> decodeHeader(std::string_view buffer);

/**
 * Decode @p payload (exactly header.payloadLen bytes) for a
 * PredictRequest frame. String views point into @p payload.
 * Truncated fields and trailing bytes beyond the declared layout
 * are recoverable errors.
 */
Result<WireRequest> decodeRequest(std::string_view payload);

/** PredictResponse counterpart of decodeRequest(). */
Result<WireResponse> decodeResponse(std::string_view payload);

/** StatuszResponse payload: the JSON document (view into payload). */
Result<std::string_view> decodeStatuszResponse(std::string_view payload);

} // namespace net
} // namespace heteromap

#endif // HETEROMAP_NET_WIRE_HH
