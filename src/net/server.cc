/**
 * @file
 * NetServer implementation: the epoll event loop, the per-shard
 * harvesters, and the wire <-> ServeResponse conversions.
 */

#include "net/server.hh"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/logging.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

namespace heteromap {
namespace net {

namespace {

int64_t
monotonicNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Shed response of the given reason, ready for the wire. */
WireResponse
shedResponse(serve::ShedReason reason)
{
    WireResponse wire;
    wire.status = static_cast<uint8_t>(serve::ServeStatus::Shed);
    wire.shedReason = static_cast<uint8_t>(reason);
    return wire;
}

/** Error response carrying @p code and @p message. */
WireResponse
errorResponse(ErrorCode code, std::string_view message)
{
    WireResponse wire;
    wire.status = static_cast<uint8_t>(serve::ServeStatus::Error);
    wire.hasError = true;
    wire.errorCode = static_cast<uint8_t>(code);
    wire.errorMessage = message;
    return wire;
}

} // namespace

WireResponse
toWire(const serve::ServeResponse &response)
{
    WireResponse wire;
    wire.status = static_cast<uint8_t>(response.status);
    wire.shedReason = static_cast<uint8_t>(response.shedReason);
    wire.degradationLevel =
        static_cast<uint8_t>(response.degradationLevel);
    wire.servedByFallback = response.servedByFallback;
    wire.modelEpoch = response.modelEpoch;
    wire.accelerator =
        static_cast<uint8_t>(response.deployment.config.accelerator);
    wire.threads = response.deployment.config.activeThreads();
    wire.predictedSeconds = response.deployment.report.seconds;
    wire.overheadMs = response.deployment.overheadMs;
    wire.queueMs = response.queueMs;
    wire.serviceMs = response.serviceMs;
    wire.batchSize = static_cast<uint32_t>(response.batchSize);
    if (response.error) {
        wire.hasError = true;
        wire.errorCode = static_cast<uint8_t>(response.error->code);
        wire.errorMessage = response.error->message;
    }
    return wire;
}

serve::ServeResponse
fromWire(const WireResponse &wire)
{
    serve::ServeResponse response;
    response.status = static_cast<serve::ServeStatus>(wire.status);
    response.shedReason =
        static_cast<serve::ShedReason>(wire.shedReason);
    response.degradationLevel = wire.degradationLevel;
    response.servedByFallback = wire.servedByFallback;
    response.modelEpoch = wire.modelEpoch;
    response.deployment.config.accelerator =
        static_cast<AcceleratorKind>(wire.accelerator);
    if (response.deployment.config.accelerator ==
        AcceleratorKind::Gpu) {
        response.deployment.config.gpuGlobalThreads = wire.threads;
    } else {
        response.deployment.config.cores = wire.threads;
        response.deployment.config.threadsPerCore = 1;
    }
    response.deployment.report.seconds = wire.predictedSeconds;
    response.deployment.overheadMs = wire.overheadMs;
    response.queueMs = wire.queueMs;
    response.serviceMs = wire.serviceMs;
    response.batchSize = wire.batchSize;
    if (wire.hasError)
        response.error = serve::ServeError{
            static_cast<ErrorCode>(wire.errorCode),
            std::string(wire.errorMessage)};
    return response;
}

// --- CompletionQueue -------------------------------------------------

void
NetServer::CompletionQueue::push(InFlight in_flight)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(in_flight));
    }
    cv.notify_one();
}

bool
NetServer::CompletionQueue::pop(InFlight &out)
{
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [this] { return closed || !queue.empty(); });
    if (queue.empty())
        return false; // closed and drained
    out = std::move(queue.front());
    queue.pop_front();
    return true;
}

void
NetServer::CompletionQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        closed = true;
    }
    cv.notify_all();
}

// --- NetServer lifecycle ---------------------------------------------

NetServer::NetServer(serve::ModelRegistry &models,
                     ServerOptions options)
    : models_(models), options_(std::move(options)),
      router_(std::max<std::size_t>(1, options_.shards),
              options_.vnodes),
      admission_(options_.admission)
{
    options_.shards = std::max<std::size_t>(1, options_.shards);

    for (std::size_t shard = 0; shard < options_.shards; ++shard) {
        serve::ServiceOptions shard_options = options_.shard;
        // The loop thread must never block inside submit — the shard
        // queues shed instead of applying backpressure.
        shard_options.admission = serve::AdmissionPolicy::Reject;
        shard_options.statsMetricsPrefix =
            "serve.shard" + std::to_string(shard) + ".stats_cache";
        services_.push_back(std::make_unique<serve::PredictionService>(
            models_, std::move(shard_options)));
        completions_.push_back(std::make_unique<CompletionQueue>());
    }

    for (auto &workload : allWorkloads()) {
        std::string name = workload->name();
        workloads_.emplace(
            std::move(name),
            std::shared_ptr<const Workload>(std::move(workload)));
    }
}

NetServer::~NetServer() { stop(); }

void
NetServer::registerGraph(const std::string &name,
                         std::shared_ptr<const Graph> graph)
{
    CatalogEntry entry;
    entry.routeKey = mixFingerprint(fingerprintGraph(*graph));
    entry.graph = std::move(graph);
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    catalog_[name] = std::move(entry);
}

Result<Endpoint>
NetServer::start()
{
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (running_.load())
        return makeError(ErrorCode::Unavailable, 0,
                         "server already running");

    auto listener = listenOn(options_.endpoint);
    if (!listener.ok())
        return listener.error();
    listen_fd_ = std::move(listener).value();

    auto bound = localEndpoint(listen_fd_.get(), options_.endpoint);
    if (!bound.ok())
        return bound.error();

    const int wake = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake < 0)
        return makeError(ErrorCode::Io, 0, "eventfd: ",
                         std::strerror(errno));
    wake_fd_ = OwnedFd(wake);

    const int ep = ::epoll_create1(EPOLL_CLOEXEC);
    if (ep < 0)
        return makeError(ErrorCode::Io, 0, "epoll_create1: ",
                         std::strerror(errno));
    epoll_fd_ = OwnedFd(ep);

    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = listen_fd_.get();
    ::epoll_ctl(ep, EPOLL_CTL_ADD, listen_fd_.get(), &event);
    event.data.fd = wake_fd_.get();
    ::epoll_ctl(ep, EPOLL_CTL_ADD, wake_fd_.get(), &event);

    stopping_.store(false);
    running_.store(true);
    for (std::size_t shard = 0; shard < services_.size(); ++shard)
        harvesters_.emplace_back(
            [this, shard] { harvesterThread(shard); });
    loop_ = std::thread([this] { loopThread(); });

    inform("net: serving on ", bound.value().toString(), " with ",
         services_.size(), " shard(s)");
    return bound.value();
}

void
NetServer::stop()
{
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!running_.load())
        return;
    stopping_.store(true);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t wrote =
        ::write(wake_fd_.get(), &one, sizeof one);
    if (loop_.joinable())
        loop_.join();

    // Harvesters drain their remaining futures (the shards are still
    // serving), then exit; their posts land in a dead outbox.
    for (auto &completion : completions_)
        completion->close();
    for (auto &harvester : harvesters_)
        if (harvester.joinable())
            harvester.join();
    harvesters_.clear();

    for (auto &service : services_)
        service->close();

    connections_.clear();
    conn_fd_by_id_.clear();
    {
        std::lock_guard<std::mutex> outbox_lock(outbox_mutex_);
        outbox_.clear();
    }
    listen_fd_.reset();
    wake_fd_.reset();
    epoll_fd_.reset();
    running_.store(false);
    HM_GAUGE_SET("serve.net.connections", 0.0);
}

// --- Public accessors ------------------------------------------------

std::size_t
NetServer::shardForGraph(const Graph &graph) const
{
    return router_.route(mixFingerprint(fingerprintGraph(graph)));
}

serve::PredictionService &
NetServer::shard(std::size_t index)
{
    HM_ASSERT(index < services_.size(), "shard index ", index,
              " out of range (", services_.size(), " shards)");
    return *services_[index];
}

std::vector<serve::ServiceStatus>
NetServer::shardStatuses() const
{
    std::vector<serve::ServiceStatus> statuses;
    statuses.reserve(services_.size());
    for (const auto &service : services_)
        statuses.push_back(service->statusz());
    return statuses;
}

std::string
NetServer::statuszJson() const
{
    return serve::fleetStatuszJson(shardStatuses());
}

ServerStats
NetServer::stats() const
{
    ServerStats stats;
    stats.connectionsAccepted = connections_accepted_.load();
    stats.connectionsDropped = connections_dropped_.load();
    stats.slowReaderDisconnects = slow_reader_disconnects_.load();
    stats.framesReceived = frames_received_.load();
    stats.framesSent = frames_sent_.load();
    stats.badFrames = bad_frames_.load();
    stats.requestsSubmitted = requests_submitted_.load();
    stats.unknownGraph = unknown_graph_.load();
    stats.unknownWorkload = unknown_workload_.load();
    return stats;
}

// --- Event loop ------------------------------------------------------

void
NetServer::loopThread()
{
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];

    while (!stopping_.load(std::memory_order_acquire)) {
        const int ready =
            ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("net: epoll_wait failed: ", std::strerror(errno));
            break;
        }
        for (int i = 0; i < ready; ++i) {
            const int fd = events[i].data.fd;
            if (fd == listen_fd_.get()) {
                acceptReady();
                continue;
            }
            if (fd == wake_fd_.get()) {
                uint64_t drained = 0;
                while (::read(wake_fd_.get(), &drained,
                              sizeof drained) > 0) {
                }
                drainOutbox();
                continue;
            }
            auto it = connections_.find(fd);
            if (it == connections_.end())
                continue; // closed earlier in this batch
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConnection(fd);
                continue;
            }
            if (events[i].events & EPOLLIN)
                readReady(it->second);
            // Re-check: readReady may have closed the connection.
            it = connections_.find(fd);
            if (it != connections_.end() &&
                (events[i].events & EPOLLOUT)) {
                writeReady(it->second);
                if (it->second.dead)
                    closeConnection(fd);
            }
        }
        // Posts that raced the wakeup read are picked up here.
        drainOutbox();
    }

    // Loop exit: close every connection (pending responses from the
    // harvesters are dropped on the floor; clients observe a reset,
    // which their transport-error path turns into Unavailable).
    connections_.clear();
    conn_fd_by_id_.clear();
    HM_GAUGE_SET("serve.net.connections", 0.0);
}

void
NetServer::acceptReady()
{
    for (;;) {
        const int fd =
            ::accept4(listen_fd_.get(), nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            if (errno == EINTR)
                continue;
            warn("net: accept failed: ", std::strerror(errno));
            return;
        }
        if (connections_.size() >= options_.maxConnections) {
            ::close(fd);
            connections_dropped_.fetch_add(1);
            HM_COUNTER_INC("serve.net.connections_dropped");
            continue;
        }
        Connection conn;
        conn.fd = OwnedFd(fd);
        conn.id = next_conn_id_++;
        conn_fd_by_id_[conn.id] = fd;
        connections_.emplace(fd, std::move(conn));
        connections_accepted_.fetch_add(1);

        epoll_event event{};
        event.events = EPOLLIN;
        event.data.fd = fd;
        ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &event);
        HM_GAUGE_SET("serve.net.connections",
                     static_cast<double>(connections_.size()));
    }
}

void
NetServer::readReady(Connection &conn)
{
    char chunk[16 * 1024];
    for (;;) {
        const ssize_t got =
            ::recv(conn.fd.get(), chunk, sizeof chunk, 0);
        if (got > 0) {
            conn.rbuf.append(chunk, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0) { // peer closed
            closeConnection(conn.fd.get());
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConnection(conn.fd.get());
        return;
    }
    if (!parseFrames(conn) || conn.dead)
        closeConnection(conn.fd.get());
}

bool
NetServer::parseFrames(Connection &conn)
{
    while (conn.rbuf.size() - conn.rpos >= kHeaderBytes) {
        const std::string_view buffered(conn.rbuf.data() + conn.rpos,
                                        conn.rbuf.size() - conn.rpos);
        auto header = decodeHeader(buffered);
        if (!header.ok()) {
            // Framing is lost: nothing downstream of a bad header can
            // be trusted, so the connection goes away (recoverably).
            bad_frames_.fetch_add(1);
            HM_COUNTER_INC("serve.net.bad_frames");
            warn("net: closing connection on bad frame: ",
                 header.error().message);
            return false;
        }
        const std::size_t frame_bytes =
            kHeaderBytes + header.value().payloadLen;
        if (buffered.size() < frame_bytes)
            break; // wait for the rest of the payload
        HM_HISTOGRAM_RECORD_MS("serve.net.frame_bytes",
                            static_cast<double>(frame_bytes));
        frames_received_.fetch_add(1);
        const std::string_view payload =
            buffered.substr(kHeaderBytes, header.value().payloadLen);
        if (!dispatchFrame(conn, header.value(), payload))
            return false;
        conn.rpos += frame_bytes;
        if (conn.dead) // a send inside dispatch failed the connection
            return false;
    }
    if (conn.rpos > 0) {
        conn.rbuf.erase(0, conn.rpos);
        conn.rpos = 0;
    }
    return true;
}

bool
NetServer::dispatchFrame(Connection &conn, const FrameHeader &header,
                         std::string_view payload)
{
    switch (header.type) {
      case FrameType::PredictRequest:
        handlePredict(conn, header, payload);
        return true;
      case FrameType::Ping: {
        std::string out;
        encodePong(header.requestId, out);
        sendOnConn(conn, std::move(out));
        return true;
      }
      case FrameType::Statusz: {
        std::string out;
        encodeStatuszResponse(header.requestId, statuszJson(), out);
        sendOnConn(conn, std::move(out));
        return true;
      }
      case FrameType::PredictResponse:
      case FrameType::Pong:
      case FrameType::StatuszResponse:
        // Server-to-client frames arriving at the server: a confused
        // peer. Count and drop the frame; framing is still intact.
        bad_frames_.fetch_add(1);
        HM_COUNTER_INC("serve.net.bad_frames");
        return true;
    }
    return true; // decodeHeader rejected unknown types already
}

void
NetServer::handlePredict(Connection &conn, const FrameHeader &header,
                         std::string_view payload)
{
    const int64_t received_ns = monotonicNs();

    auto decoded = decodeRequest(payload);
    if (!decoded.ok()) {
        // Malformed payload under a well-formed header: framing is
        // intact, so answer the request and keep the connection.
        bad_frames_.fetch_add(1);
        HM_COUNTER_INC("serve.net.bad_frames");
        respondNow(conn, header.requestId,
                   errorResponse(decoded.error().code,
                                 decoded.error().message));
        return;
    }
    const WireRequest &wire = decoded.value();
    // Lane and supervision ride in the header flags, not the payload.
    const bool supervised = (header.flags & kFlagSupervised) != 0;
    const bool priority = (header.flags & kFlagPriority) != 0;

    const Lane lane = priority ? Lane::Priority : Lane::Normal;
    const AdmissionDecision decision =
        admission_.admit(wire.clientId, lane, received_ns);
    if (decision == AdmissionDecision::QuotaRejected) {
        respondNow(conn, header.requestId,
                   shedResponse(serve::ShedReason::QuotaExceeded));
        return;
    }
    if (decision == AdmissionDecision::LaneShed) {
        respondNow(conn, header.requestId,
                   shedResponse(serve::ShedReason::QueueFull));
        return;
    }

    serve::ServeRequest request;
    uint64_t route_key = 0;
    {
        std::lock_guard<std::mutex> lock(catalog_mutex_);
        auto graph_it = catalog_.find(std::string(wire.graph));
        if (graph_it == catalog_.end()) {
            unknown_graph_.fetch_add(1);
            respondNow(
                conn, header.requestId,
                errorResponse(ErrorCode::OutOfRange,
                              "unknown graph in catalogue"));
            return;
        }
        auto workload_it =
            workloads_.find(std::string(wire.workload));
        if (workload_it == workloads_.end()) {
            unknown_workload_.fetch_add(1);
            respondNow(conn, header.requestId,
                       errorResponse(ErrorCode::OutOfRange,
                                     "unknown workload"));
            return;
        }
        request.graph = graph_it->second.graph;
        request.inputName = graph_it->first;
        request.workload = workload_it->second;
        route_key = graph_it->second.routeKey;
    }
    request.supervised = supervised;
    request.deadlineMs = wire.deadlineMs;
    if (wire.sweeps > 0)
        request.measure.sweeps = wire.sweeps;
    if (wire.seed > 0)
        request.measure.seed = wire.seed;

    const std::size_t shard = router_.route(route_key);
    InFlight in_flight;
    in_flight.connId = conn.id;
    in_flight.requestId = header.requestId;
    in_flight.receivedNs = received_ns;
    in_flight.future = services_[shard]->submit(std::move(request));
    completions_[shard]->push(std::move(in_flight));
    requests_submitted_.fetch_add(1);
}

// --- Writes ----------------------------------------------------------

void
NetServer::sendOnConn(Connection &conn, std::string bytes)
{
    if (conn.dead)
        return; // going away; the bytes would never be delivered
    // One sendOnConn call is one frame: remember where it ends in
    // the queued-byte stream so writeReady can count framesSent only
    // once the frame's last byte has left the write buffer.
    conn.wqueued += bytes.size();
    conn.frameEnds.push_back(conn.wqueued);
    if (conn.wbuf.empty()) {
        conn.wbuf = std::move(bytes);
        conn.wpos = 0;
    } else {
        conn.wbuf.append(bytes);
    }
    writeReady(conn);
}

void
NetServer::writeReady(Connection &conn)
{
    if (conn.dead)
        return;
    while (conn.wpos < conn.wbuf.size()) {
        const ssize_t wrote =
            ::send(conn.fd.get(), conn.wbuf.data() + conn.wpos,
                   conn.wbuf.size() - conn.wpos, MSG_NOSIGNAL);
        if (wrote > 0) {
            conn.wpos += static_cast<std::size_t>(wrote);
            conn.wflushed += static_cast<uint64_t>(wrote);
            while (!conn.frameEnds.empty() &&
                   conn.frameEnds.front() <= conn.wflushed) {
                conn.frameEnds.pop_front();
                frames_sent_.fetch_add(1);
            }
            continue;
        }
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (wrote < 0 && errno == EINTR)
            continue;
        // EPIPE/ECONNRESET and friends. Callers up the stack (parse,
        // dispatch, drainOutbox) may still hold this Connection&, so
        // only mark it; the event loop reaps it at top level.
        conn.dead = true;
        return;
    }
    if (conn.wpos >= conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if (conn.wpos > 0 && conn.wpos > conn.wbuf.size() / 2) {
        conn.wbuf.erase(0, conn.wpos);
        conn.wpos = 0;
    }
    if (conn.wbuf.size() - conn.wpos > options_.maxWriteBacklogBytes) {
        // A reader this slow pins server memory; cut it loose (the
        // buffered-but-undelivered frames are never counted as sent).
        slow_reader_disconnects_.fetch_add(1);
        HM_COUNTER_INC("serve.net.slow_reader_disconnects");
        conn.dead = true;
        return;
    }
    const bool want_write = !conn.wbuf.empty();
    if (want_write != conn.wantWrite) {
        conn.wantWrite = want_write;
        updateEpoll(conn);
    }
}

void
NetServer::updateEpoll(Connection &conn)
{
    epoll_event event{};
    event.events = EPOLLIN | (conn.wantWrite ? EPOLLOUT : 0u);
    event.data.fd = conn.fd.get();
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd.get(),
                &event);
}

void
NetServer::respondNow(Connection &conn, uint64_t request_id,
                      const WireResponse &response)
{
    std::string out;
    encodeResponse(request_id, response, out);
    sendOnConn(conn, std::move(out));
}

void
NetServer::closeConnection(int fd)
{
    auto it = connections_.find(fd);
    if (it == connections_.end())
        return;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr);
    conn_fd_by_id_.erase(it->second.id);
    connections_.erase(it); // OwnedFd closes the socket
    HM_GAUGE_SET("serve.net.connections",
                 static_cast<double>(connections_.size()));
}

// --- Harvesters ------------------------------------------------------

void
NetServer::harvesterThread(std::size_t shard_index)
{
    CompletionQueue &completions = *completions_[shard_index];
    InFlight in_flight;
    while (completions.pop(in_flight)) {
        serve::ServeResponse response = in_flight.future.get();
        const double wire_ms =
            static_cast<double>(monotonicNs() -
                                in_flight.receivedNs) *
            1e-6;
        HM_HISTOGRAM_RECORD_MS("serve.net.wire_ms", wire_ms);

        std::string out;
        encodeResponse(in_flight.requestId, toWire(response), out);
        postResponse(in_flight.connId, std::move(out));
    }
}

void
NetServer::postResponse(uint64_t conn_id, std::string bytes)
{
    {
        std::lock_guard<std::mutex> lock(outbox_mutex_);
        outbox_.emplace_back(conn_id, std::move(bytes));
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t wrote =
        ::write(wake_fd_.get(), &one, sizeof one);
}

void
NetServer::drainOutbox()
{
    std::vector<std::pair<uint64_t, std::string>> drained;
    {
        std::lock_guard<std::mutex> lock(outbox_mutex_);
        drained.swap(outbox_);
    }
    for (auto &[conn_id, bytes] : drained) {
        auto id_it = conn_fd_by_id_.find(conn_id);
        if (id_it == conn_fd_by_id_.end())
            continue; // connection died while the shard worked
        const int fd = id_it->second;
        auto conn_it = connections_.find(fd);
        if (conn_it == connections_.end())
            continue;
        sendOnConn(conn_it->second, std::move(bytes));
        if (conn_it->second.dead)
            closeConnection(fd);
    }
}

} // namespace net
} // namespace heteromap
