/**
 * @file
 * NetClient: the connect-side half of the binary RPC protocol — a
 * serve::ServeBackend over one connection to a NetServer, so a
 * serve::RetryingClient layered on top runs its full
 * retry/backoff/circuit-breaker ladder over the network exactly as
 * it does in-process.
 *
 * Transport-error contract (the ServeBackend contract): call()
 * NEVER throws. A refused connect, a reset connection, or a
 * mid-frame EOF disconnects, counts "client.transport_errors", and
 * returns ServeStatus::Error with ErrorCode::Unavailable — a
 * transient failure the retry ladder backs off and retries (the
 * next attempt auto-reconnects). A malformed *received* frame (bad
 * magic, decode failure, correlation-id mismatch) also disconnects
 * but returns ErrorCode::Parse, which the ladder treats as terminal.
 * Server-side rejections (unknown graph/workload, malformed request
 * payload) arrive as ordinary decoded responses and pass through
 * untouched.
 *
 * One NetClient is one tenant: its clientId keys the server's
 * admission quota and its priority flag picks the admission lane.
 * Calls are serialized on the connection (one request in flight);
 * concurrent tenants each hold their own NetClient.
 */

#ifndef HETEROMAP_NET_CLIENT_HH
#define HETEROMAP_NET_CLIENT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "net/socket.hh"
#include "net/wire.hh"
#include "serve/retrying_client.hh"

namespace heteromap {
namespace net {

/** Per-connection (per-tenant) client tunables. */
struct NetClientOptions {
    /** Admission-quota key presented on every request. */
    uint64_t clientId = 0;

    /** Request the priority admission lane. */
    bool priority = false;

    /** Reconnect transparently on the next call after a failure. */
    bool autoReconnect = true;
};

/** ServeBackend over one binary-RPC connection to a NetServer. */
class NetClient : public serve::ServeBackend
{
  public:
    NetClient(Endpoint endpoint, NetClientOptions options = {});
    ~NetClient() override;

    NetClient(const NetClient &) = delete;
    NetClient &operator=(const NetClient &) = delete;

    /**
     * Serve @p request over the connection. The graph travels as its
     * catalogue name (request.inputName); workload as its registry
     * name. Always returns a response — see the transport-error
     * contract in the file comment.
     */
    serve::ServeResponse call(serve::ServeRequest request) override;

    /** Liveness probe. @return round-trip success. */
    bool ping();

    /** Fetch the server's fleet statusz JSON document. */
    Result<std::string> statusz();

    /**
     * Re-tenant the connection: subsequent calls present
     * @p client_id to admission. Load generators use this to
     * simulate thousands of tenants over a few connections.
     */
    void setClientId(uint64_t client_id);

    /** Switch subsequent calls between the admission lanes. */
    void setPriority(bool priority);

    /** Drop the connection (next call reconnects if enabled). */
    void disconnect();

    bool connected() const;

    /** Transport-level failures observed so far (monotonic). */
    uint64_t transportErrors() const
    {
        return transport_errors_.load();
    }

  private:
    /** Connect if needed. @return false when unreachable. */
    bool ensureConnected();

    /**
     * Read exactly one frame. @return its header with the payload
     * bytes in @p payload; transport and decode failures are
     * recoverable errors (the connection is dropped by the caller).
     */
    Result<FrameHeader> readFrame(std::string &payload);

    /** Build the Unavailable / Parse error response forms. */
    serve::ServeResponse transportError(const std::string &what);
    serve::ServeResponse protocolError(const std::string &what);

    Endpoint endpoint_;
    NetClientOptions options_;

    mutable std::mutex mutex_; //!< serializes the connection
    OwnedFd fd_;
    bool ever_connected_ = false;
    uint64_t next_request_id_ = 1;
    std::atomic<uint64_t> transport_errors_{0};
};

} // namespace net
} // namespace heteromap

#endif // HETEROMAP_NET_CLIENT_HH
