/**
 * @file
 * Wire codec implementation. Encoders append to a caller-owned
 * string (one allocation for the common small frame); decoders walk
 * a cursor over the payload view and fail with a recoverable error
 * the moment a field would read past the end — and, symmetrically,
 * when decoding finishes with declared bytes left over.
 */

#include "net/wire.hh"

#include <cstring>

namespace heteromap {
namespace net {

namespace {

void
putU8(std::string &out, uint8_t value)
{
    out.push_back(static_cast<char>(value));
}

void
putU16(std::string &out, uint16_t value)
{
    out.push_back(static_cast<char>(value & 0xff));
    out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void
putU32(std::string &out, uint32_t value)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
putU64(std::string &out, uint64_t value)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<char>((value >> shift) & 0xff));
}

void
putF64(std::string &out, double value)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    putU64(out, bits);
}

void
putString(std::string &out, std::string_view text)
{
    // Length-limited by the u16 prefix; callers pass registry /
    // catalogue names and error messages, all far below 64 KiB.
    const uint16_t len = static_cast<uint16_t>(
        text.size() > 0xffff ? 0xffff : text.size());
    putU16(out, len);
    out.append(text.data(), len);
}

/** Bounds-checked little-endian reader over one payload view. */
class Cursor
{
  public:
    explicit Cursor(std::string_view data) : data_(data) {}

    bool
    readU8(uint8_t &value)
    {
        if (pos_ + 1 > data_.size())
            return false;
        value = static_cast<uint8_t>(data_[pos_++]);
        return true;
    }

    bool
    readU16(uint16_t &value)
    {
        if (pos_ + 2 > data_.size())
            return false;
        value = 0;
        for (int shift = 0; shift < 16; shift += 8)
            value |= static_cast<uint16_t>(
                static_cast<uint8_t>(data_[pos_++]))
                     << shift;
        return true;
    }

    bool
    readU32(uint32_t &value)
    {
        if (pos_ + 4 > data_.size())
            return false;
        value = 0;
        for (int shift = 0; shift < 32; shift += 8)
            value |= static_cast<uint32_t>(
                static_cast<uint8_t>(data_[pos_++]))
                     << shift;
        return true;
    }

    bool
    readU64(uint64_t &value)
    {
        if (pos_ + 8 > data_.size())
            return false;
        value = 0;
        for (int shift = 0; shift < 64; shift += 8)
            value |= static_cast<uint64_t>(
                static_cast<uint8_t>(data_[pos_++]))
                     << shift;
        return true;
    }

    bool
    readF64(double &value)
    {
        uint64_t bits = 0;
        if (!readU64(bits))
            return false;
        std::memcpy(&value, &bits, sizeof(value));
        return true;
    }

    bool
    readString(std::string_view &view)
    {
        uint16_t len = 0;
        if (!readU16(len))
            return false;
        if (pos_ + len > data_.size())
            return false;
        view = data_.substr(pos_, len);
        pos_ += len;
        return true;
    }

    bool exhausted() const { return pos_ == data_.size(); }
    std::size_t position() const { return pos_; }

  private:
    std::string_view data_;
    std::size_t pos_ = 0;
};

void
putHeader(std::string &out, FrameType type, uint16_t flags,
          uint64_t request_id, uint32_t payload_len)
{
    putU32(out, kWireMagic);
    putU8(out, kWireVersion);
    putU8(out, static_cast<uint8_t>(type));
    putU16(out, flags);
    putU64(out, request_id);
    putU32(out, payload_len);
}

/**
 * Encode a payload with @p fill, then stamp the header in front with
 * the measured payload length — the length prefix can never disagree
 * with the bytes that follow it.
 */
template <typename Fill>
void
encodeFrame(std::string &out, FrameType type, uint16_t flags,
            uint64_t request_id, Fill &&fill)
{
    const std::size_t header_at = out.size();
    out.append(kHeaderBytes, '\0');
    const std::size_t payload_at = out.size();
    fill(out);
    const uint32_t payload_len =
        static_cast<uint32_t>(out.size() - payload_at);
    std::string header;
    header.reserve(kHeaderBytes);
    putHeader(header, type, flags, request_id, payload_len);
    out.replace(header_at, kHeaderBytes, header);
}

bool
validFrameType(uint8_t raw)
{
    return raw >= static_cast<uint8_t>(FrameType::PredictRequest) &&
           raw <= static_cast<uint8_t>(FrameType::StatuszResponse);
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::PredictRequest: return "predict-request";
      case FrameType::PredictResponse: return "predict-response";
      case FrameType::Ping: return "ping";
      case FrameType::Pong: return "pong";
      case FrameType::Statusz: return "statusz";
      case FrameType::StatuszResponse: return "statusz-response";
    }
    return "unknown";
}

void
encodeRequest(uint64_t request_id, const WireRequest &request,
              std::string &out)
{
    uint16_t flags = 0;
    if (request.supervised)
        flags |= kFlagSupervised;
    if (request.priority)
        flags |= kFlagPriority;
    encodeFrame(out, FrameType::PredictRequest, flags, request_id,
                [&](std::string &buf) {
                    putU64(buf, request.clientId);
                    putF64(buf, request.deadlineMs);
                    putU32(buf, request.sweeps);
                    putU64(buf, request.seed);
                    putString(buf, request.workload);
                    putString(buf, request.graph);
                });
}

void
encodeResponse(uint64_t request_id, const WireResponse &response,
               std::string &out)
{
    encodeFrame(out, FrameType::PredictResponse, 0, request_id,
                [&](std::string &buf) {
                    putU8(buf, response.status);
                    putU8(buf, response.shedReason);
                    putU8(buf, response.degradationLevel);
                    putU8(buf, response.servedByFallback ? 1 : 0);
                    putU64(buf, response.modelEpoch);
                    putU8(buf, response.accelerator);
                    putU32(buf, response.threads);
                    putF64(buf, response.predictedSeconds);
                    putF64(buf, response.overheadMs);
                    putF64(buf, response.queueMs);
                    putF64(buf, response.serviceMs);
                    putU32(buf, response.batchSize);
                    putU8(buf, response.hasError ? 1 : 0);
                    putU8(buf, response.errorCode);
                    putString(buf, response.errorMessage);
                });
}

void
encodePing(uint64_t request_id, std::string &out)
{
    encodeFrame(out, FrameType::Ping, 0, request_id,
                [](std::string &) {});
}

void
encodePong(uint64_t request_id, std::string &out)
{
    encodeFrame(out, FrameType::Pong, 0, request_id,
                [](std::string &) {});
}

void
encodeStatusz(uint64_t request_id, std::string &out)
{
    encodeFrame(out, FrameType::Statusz, 0, request_id,
                [](std::string &) {});
}

void
encodeStatuszResponse(uint64_t request_id, std::string_view json,
                      std::string &out)
{
    // The u16 string prefix caps at 64 KiB; statusz documents can
    // exceed that for wide fleets, so this payload is raw bytes and
    // the frame length prefix is the only length.
    //
    // A document over kMaxPayloadBytes would encode a frame whose
    // declared length the peer's own decodeHeader rejects — statusz
    // must not self-break exactly when the fleet is widest, so an
    // oversized document is replaced by a small valid-JSON stub
    // naming the size it could not ship.
    if (json.size() > kMaxPayloadBytes) {
        std::string stub = "{\"statusz_truncated\":true,"
                           "\"document_bytes\":";
        stub += std::to_string(json.size());
        stub += "}";
        encodeFrame(out, FrameType::StatuszResponse, 0, request_id,
                    [&](std::string &buf) { buf.append(stub); });
        return;
    }
    encodeFrame(out, FrameType::StatuszResponse, 0, request_id,
                [&](std::string &buf) {
                    buf.append(json.data(), json.size());
                });
}

Result<FrameHeader>
decodeHeader(std::string_view buffer)
{
    HM_ASSERT(buffer.size() >= kHeaderBytes,
              "decodeHeader needs ", kHeaderBytes, " bytes, got ",
              buffer.size());
    Cursor cursor(buffer.substr(0, kHeaderBytes));
    uint32_t magic = 0;
    uint8_t version = 0;
    uint8_t raw_type = 0;
    FrameHeader header;
    cursor.readU32(magic);
    cursor.readU8(version);
    cursor.readU8(raw_type);
    cursor.readU16(header.flags);
    cursor.readU64(header.requestId);
    cursor.readU32(header.payloadLen);
    if (magic != kWireMagic)
        return makeError(ErrorCode::Parse, 0,
                         "bad frame magic 0x", std::hex, magic);
    if (version != kWireVersion)
        return makeError(ErrorCode::Parse, 0, "wire version skew: got ",
                         unsigned(version), ", speak ",
                         unsigned(kWireVersion));
    if (!validFrameType(raw_type))
        return makeError(ErrorCode::Parse, 0, "unknown frame type ",
                         unsigned(raw_type));
    if (header.payloadLen > kMaxPayloadBytes)
        return makeError(ErrorCode::OutOfRange, 0,
                         "declared payload ", header.payloadLen,
                         " bytes exceeds the ", kMaxPayloadBytes,
                         "-byte frame cap");
    header.version = version;
    header.type = static_cast<FrameType>(raw_type);
    return header;
}

Result<WireRequest>
decodeRequest(std::string_view payload)
{
    Cursor cursor(payload);
    WireRequest request;
    if (!cursor.readU64(request.clientId) ||
        !cursor.readF64(request.deadlineMs) ||
        !cursor.readU32(request.sweeps) ||
        !cursor.readU64(request.seed) ||
        !cursor.readString(request.workload) ||
        !cursor.readString(request.graph))
        return makeError(ErrorCode::Parse, 0,
                         "truncated predict-request payload at byte ",
                         cursor.position(), " of ", payload.size());
    if (!cursor.exhausted())
        return makeError(ErrorCode::Parse, 0, "predict-request payload "
                         "declares ", payload.size(), " bytes but the "
                         "fields end at ", cursor.position());
    return request;
}

Result<WireResponse>
decodeResponse(std::string_view payload)
{
    Cursor cursor(payload);
    WireResponse response;
    uint8_t fallback = 0, has_error = 0;
    if (!cursor.readU8(response.status) ||
        !cursor.readU8(response.shedReason) ||
        !cursor.readU8(response.degradationLevel) ||
        !cursor.readU8(fallback) ||
        !cursor.readU64(response.modelEpoch) ||
        !cursor.readU8(response.accelerator) ||
        !cursor.readU32(response.threads) ||
        !cursor.readF64(response.predictedSeconds) ||
        !cursor.readF64(response.overheadMs) ||
        !cursor.readF64(response.queueMs) ||
        !cursor.readF64(response.serviceMs) ||
        !cursor.readU32(response.batchSize) ||
        !cursor.readU8(has_error) ||
        !cursor.readU8(response.errorCode) ||
        !cursor.readString(response.errorMessage))
        return makeError(ErrorCode::Parse, 0,
                         "truncated predict-response payload at byte ",
                         cursor.position(), " of ", payload.size());
    if (!cursor.exhausted())
        return makeError(ErrorCode::Parse, 0, "predict-response payload "
                         "declares ", payload.size(), " bytes but the "
                         "fields end at ", cursor.position());
    response.servedByFallback = fallback != 0;
    response.hasError = has_error != 0;
    return response;
}

Result<std::string_view>
decodeStatuszResponse(std::string_view payload)
{
    // The whole payload is the document; an empty one means the
    // server had no status to give, which is still malformed — the
    // emitter always writes at least "{}".
    if (payload.empty())
        return makeError(ErrorCode::Parse, 0,
                         "empty statusz-response payload");
    return payload;
}

} // namespace net
} // namespace heteromap
