/**
 * @file
 * NetClient implementation.
 */

#include "net/client.hh"

#include <utility>

#include "net/server.hh" // fromWire
#include "util/telemetry.hh"

namespace heteromap {
namespace net {

NetClient::NetClient(Endpoint endpoint, NetClientOptions options)
    : endpoint_(std::move(endpoint)), options_(options)
{
}

NetClient::~NetClient() = default;

void
NetClient::setClientId(uint64_t client_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    options_.clientId = client_id;
}

void
NetClient::setPriority(bool priority)
{
    std::lock_guard<std::mutex> lock(mutex_);
    options_.priority = priority;
}

void
NetClient::disconnect()
{
    std::lock_guard<std::mutex> lock(mutex_);
    fd_.reset();
}

bool
NetClient::connected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return fd_.valid();
}

bool
NetClient::ensureConnected()
{
    if (fd_.valid())
        return true;
    if (!options_.autoReconnect && ever_connected_)
        return false;
    auto connection = connectTo(endpoint_);
    if (!connection.ok())
        return false;
    fd_ = std::move(connection).value();
    ever_connected_ = true;
    return true;
}

Result<FrameHeader>
NetClient::readFrame(std::string &payload)
{
    char header_bytes[kHeaderBytes];
    auto got = recvAll(fd_.get(), header_bytes, kHeaderBytes);
    if (!got.ok())
        return got.error();
    auto header =
        decodeHeader(std::string_view(header_bytes, kHeaderBytes));
    if (!header.ok())
        return header.error();
    payload.resize(header.value().payloadLen);
    if (header.value().payloadLen > 0) {
        got = recvAll(fd_.get(), payload.data(), payload.size());
        if (!got.ok())
            return got.error();
    }
    return header.value();
}

serve::ServeResponse
NetClient::transportError(const std::string &what)
{
    transport_errors_.fetch_add(1);
    HM_COUNTER_INC("client.transport_errors");
    serve::ServeResponse response;
    response.status = serve::ServeStatus::Error;
    response.error =
        serve::ServeError{ErrorCode::Unavailable, what};
    return response;
}

serve::ServeResponse
NetClient::protocolError(const std::string &what)
{
    transport_errors_.fetch_add(1);
    HM_COUNTER_INC("client.transport_errors");
    serve::ServeResponse response;
    response.status = serve::ServeStatus::Error;
    response.error = serve::ServeError{ErrorCode::Parse, what};
    return response;
}

serve::ServeResponse
NetClient::call(serve::ServeRequest request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ensureConnected())
        return transportError("connect to " + endpoint_.toString() +
                              " failed");

    WireRequest wire;
    wire.clientId = options_.clientId;
    wire.supervised = request.supervised;
    wire.priority = options_.priority;
    wire.deadlineMs = request.deadlineMs;
    wire.sweeps = request.measure.sweeps;
    wire.seed = request.measure.seed;
    const std::string workload_name =
        request.workload ? request.workload->name() : "";
    wire.workload = workload_name;
    wire.graph = request.inputName;

    const uint64_t request_id = next_request_id_++;
    std::string frame;
    encodeRequest(request_id, wire, frame);
    auto sent = sendAll(fd_.get(), frame.data(), frame.size());
    if (!sent.ok()) {
        fd_.reset();
        return transportError("send failed: " +
                              sent.error().message);
    }

    std::string payload;
    auto header = readFrame(payload);
    if (!header.ok()) {
        fd_.reset();
        // recv-level failures (reset, mid-frame EOF) are transient;
        // a decoded-but-malformed header means the stream itself is
        // corrupt — both drop the connection, but only the former is
        // worth retrying.
        if (header.error().code == ErrorCode::Parse)
            return protocolError("bad response frame: " +
                                 header.error().message);
        return transportError("recv failed: " +
                              header.error().message);
    }
    if (header.value().type != FrameType::PredictResponse ||
        header.value().requestId != request_id) {
        fd_.reset();
        return protocolError("response correlation mismatch");
    }
    auto decoded = decodeResponse(payload);
    if (!decoded.ok()) {
        fd_.reset();
        return protocolError("bad response payload: " +
                             decoded.error().message);
    }
    serve::ServeResponse response = fromWire(decoded.value());
    response.requestId = request_id;
    return response;
}

bool
NetClient::ping()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ensureConnected())
        return false;
    const uint64_t request_id = next_request_id_++;
    std::string frame;
    encodePing(request_id, frame);
    auto sent = sendAll(fd_.get(), frame.data(), frame.size());
    if (!sent.ok()) {
        fd_.reset();
        transport_errors_.fetch_add(1);
        return false;
    }
    std::string payload;
    auto header = readFrame(payload);
    if (!header.ok() || header.value().type != FrameType::Pong ||
        header.value().requestId != request_id) {
        fd_.reset();
        transport_errors_.fetch_add(1);
        return false;
    }
    return true;
}

Result<std::string>
NetClient::statusz()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ensureConnected())
        return makeError(ErrorCode::Unavailable, 0, "connect to ",
                         endpoint_.toString(), " failed");
    const uint64_t request_id = next_request_id_++;
    std::string frame;
    encodeStatusz(request_id, frame);
    auto sent = sendAll(fd_.get(), frame.data(), frame.size());
    if (!sent.ok()) {
        fd_.reset();
        transport_errors_.fetch_add(1);
        return sent.error();
    }
    std::string payload;
    auto header = readFrame(payload);
    if (!header.ok()) {
        fd_.reset();
        transport_errors_.fetch_add(1);
        return header.error();
    }
    if (header.value().type != FrameType::StatuszResponse ||
        header.value().requestId != request_id) {
        fd_.reset();
        transport_errors_.fetch_add(1);
        return makeError(ErrorCode::Parse, 0,
                         "statusz correlation mismatch");
    }
    auto json = decodeStatuszResponse(payload);
    if (!json.ok())
        return json.error();
    return std::string(json.value());
}

} // namespace net
} // namespace heteromap
