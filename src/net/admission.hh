/**
 * @file
 * Multi-tenant admission for the network serving tier. Sits in front
 * of the per-shard RequestQueue admission (serve/request_queue.hh):
 * that layer protects the *service* from queue overrun; this layer
 * protects *tenants from each other* before a byte of work is done.
 *
 * Each client id owns a token bucket (ratePerSec, burst). A request
 * that finds the bucket empty is shed with ShedReason::QuotaExceeded
 * — the "serve.net.quota_rejected" counters — before it touches a
 * shard, so one chatty tenant cannot starve the rest. Per-client
 * overrides let operators carve explicit quotas; unknown clients get
 * the default quota, and the client table is bounded (LRU eviction)
 * so a churn of client ids cannot grow memory without bound.
 *
 * Two priority lanes ride on top: Priority traffic is admitted
 * straight to its shard once its client quota passes, while Normal
 * traffic additionally draws from a shared normal-lane bucket. Under
 * overload the normal lane therefore sheds first, and the lane
 * counters (serve.net.accepted.* / .shed.* / .quota_rejected.*)
 * make the fairness split auditable.
 *
 * Time is injectable: every admit() takes an explicit monotonic
 * nanosecond timestamp (callers pass steady_clock now), so tests
 * drive refill deterministically without sleeping.
 */

#ifndef HETEROMAP_NET_ADMISSION_HH
#define HETEROMAP_NET_ADMISSION_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

namespace heteromap {
namespace telemetry {
class Counter;
}
namespace net {

/** Admission lanes (wire flag kFlagPriority selects Priority). */
enum class Lane : uint8_t {
    Normal = 0,
    Priority = 1,
};
inline constexpr std::size_t kNumLanes = 2;

/** @return "normal" / "priority". */
const char *laneName(Lane lane);

/** What the admission layer decided for one request. */
enum class AdmissionDecision {
    Admitted,      //!< pass through to shard routing
    QuotaRejected, //!< the client's token bucket was empty
    LaneShed,      //!< the shared normal-lane bucket was empty
};

struct AdmissionOptions {
    /** Default per-client sustained quota, requests/second. */
    double clientRatePerSec = 1000.0;

    /** Default per-client burst (bucket capacity), requests. */
    double clientBurst = 100.0;

    /**
     * Shared normal-lane throttle, requests/second; <= 0 disables
     * it (the lane then sheds only at the shard queues). Priority
     * traffic never draws from this bucket.
     */
    double normalLaneRatePerSec = 0.0;

    /** Normal-lane burst, requests. */
    double normalLaneBurst = 200.0;

    /** Client-table bound; least-recently-seen beyond it evicts. */
    std::size_t maxTrackedClients = 65536;
};

/** Thread-safe token-bucket admission, two lanes. */
class NetAdmission
{
  public:
    explicit NetAdmission(AdmissionOptions options = {});

    /**
     * Decide one request from @p client_id on @p lane at monotonic
     * time @p now_ns. Decisions consume a token only when admitted.
     */
    AdmissionDecision admit(uint64_t client_id, Lane lane,
                            int64_t now_ns);

    /**
     * Carve an explicit quota for @p client_id (replaces the
     * default-quota bucket; the bucket starts full at @p burst).
     */
    void setClientQuota(uint64_t client_id, double rate_per_sec,
                        double burst);

    /** @name Monotonic per-lane accounting. @{ */
    uint64_t accepted(Lane lane) const;
    uint64_t quotaRejected(Lane lane) const;
    uint64_t laneShed(Lane lane) const;
    /** @} */

    /** Distinct client ids currently tracked (bounded). */
    std::size_t trackedClients() const;

  private:
    struct Bucket {
        double tokens = 0.0;
        double ratePerSec = 0.0;
        double burst = 0.0;
        int64_t lastRefillNs = 0;
        bool pinned = false; //!< explicit quota: exempt from LRU
    };

    struct ClientEntry {
        Bucket bucket;
        std::list<uint64_t>::iterator lruIt;
    };

    /** Refill @p bucket up to its burst for the elapsed time. */
    static void refill(Bucket &bucket, int64_t now_ns);

    /** Take one token if available. */
    static bool tryTake(Bucket &bucket, int64_t now_ns);

    Bucket &clientBucket(uint64_t client_id, int64_t now_ns);

    AdmissionOptions options_;

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, ClientEntry> clients_;
    std::list<uint64_t> lru_; //!< front = most recently seen
    Bucket normal_lane_;

    uint64_t accepted_[kNumLanes] = {0, 0};
    uint64_t quota_rejected_[kNumLanes] = {0, 0};
    uint64_t lane_shed_[kNumLanes] = {0, 0};

    /**
     * Registry counters resolved once at construction, so the admit
     * hot path pays a pointer load. Per-instance (not file-scope):
     * two NetAdmissions in one process each hold their own mutex_,
     * and shared lazily-filled slots would race.
     */
    telemetry::Counter *accepted_counters_[kNumLanes] = {};
    telemetry::Counter *quota_rejected_counters_[kNumLanes] = {};
    telemetry::Counter *lane_shed_counters_[kNumLanes] = {};
};

} // namespace net
} // namespace heteromap

#endif // HETEROMAP_NET_ADMISSION_HH
