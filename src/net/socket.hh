/**
 * @file
 * Thin POSIX socket layer shared by the server, the client, and the
 * tests: an RAII fd, endpoint parsing ("tcp:HOST:PORT" /
 * "unix:PATH"), and listen/connect helpers for both families.
 * Failures are recoverable util/errors.hh Results — a refused
 * connection or an occupied port is an operational condition, not a
 * process-fatal bug.
 */

#ifndef HETEROMAP_NET_SOCKET_HH
#define HETEROMAP_NET_SOCKET_HH

#include <cstdint>
#include <string>

#include "util/errors.hh"

namespace heteromap {
namespace net {

/** Owning file descriptor (move-only; closes on destruction). */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : fd_(fd) {}
    ~OwnedFd() { reset(); }

    OwnedFd(OwnedFd &&other) noexcept : fd_(other.release()) {}
    OwnedFd &
    operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.release();
        }
        return *this;
    }
    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset();

  private:
    int fd_ = -1;
};

/** A parsed serving endpoint: loopback TCP or a Unix socket path. */
struct Endpoint {
    enum class Family { Tcp, Unix };

    Family family = Family::Unix;
    std::string host;    //!< TCP only (numeric, e.g. "127.0.0.1")
    uint16_t port = 0;   //!< TCP only; 0 = kernel-assigned
    std::string path;    //!< Unix only

    /** "tcp:127.0.0.1:7070" / "unix:/run/hm.sock" rendering. */
    std::string toString() const;
};

/**
 * Parse "tcp:HOST:PORT", "HOST:PORT" (tcp implied), or "unix:PATH".
 * Malformed specs (missing port, port out of range, empty path) are
 * recoverable errors.
 */
Result<Endpoint> parseEndpoint(const std::string &spec);

/**
 * Bind + listen on @p endpoint. A Unix endpoint unlinks a stale
 * socket file first. @return the listening fd (nonblocking).
 */
Result<OwnedFd> listenOn(const Endpoint &endpoint, int backlog = 128);

/**
 * The endpoint a listening TCP fd actually bound (resolves a
 * port-0 request to the kernel's pick). Unix endpoints round-trip.
 */
Result<Endpoint> localEndpoint(int listen_fd, const Endpoint &requested);

/** Blocking connect to @p endpoint. @return the connected fd. */
Result<OwnedFd> connectTo(const Endpoint &endpoint);

/** Set O_NONBLOCK on @p fd. @return false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Blocking send of the whole buffer (for the client side; the
 * server writes through its event loop instead). Short writes are
 * retried; an error or peer reset is recoverable.
 */
Result<std::size_t> sendAll(int fd, const char *data, std::size_t size);

/**
 * Blocking receive of exactly @p size bytes. EOF mid-message and
 * socket errors are recoverable (a reset peer must map onto the
 * client's transport-error path, never an exception).
 */
Result<std::size_t> recvAll(int fd, char *data, std::size_t size);

} // namespace net
} // namespace heteromap

#endif // HETEROMAP_NET_SOCKET_HH
