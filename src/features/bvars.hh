/**
 * @file
 * Benchmark (B) variables, Section III-C: thirteen normalized,
 * 0.1-discretized characteristics of a graph workload, set by the
 * programmer (here: encoded per workload from Fig. 5/6).
 *
 * Vertex processing & scheduling (mutually exclusive phase mix, sums
 * to 1 over B1-B5):
 *   B1 vertex division   B2 pareto fronts   B3 pareto-dynamic
 *   B4 push-pop          B5 reduction
 * Compute type:
 *   B6 floating-point data fraction
 * Memory access patterns:
 *   B7 data-driven (loop-index) addressing   B8 indirect addressing
 * Data movement:
 *   B9 read-only shared   B10 read-write shared   B11 local data
 * Synchronization:
 *   B12 contention (atomics)   B13 barriers per iteration
 */

#ifndef HETEROMAP_FEATURES_BVARS_HH
#define HETEROMAP_FEATURES_BVARS_HH

#include <array>
#include <string>

namespace heteromap {

/** The thirteen benchmark variables, each in {0.0, 0.1, ..., 1.0}. */
struct BVariables {
    double b1 = 0.0;  //!< % program in vertex division
    double b2 = 0.0;  //!< % program in pareto fronts
    double b3 = 0.0;  //!< % program in dynamic paretos
    double b4 = 0.0;  //!< % program in push-pops
    double b5 = 0.0;  //!< % program in reductions
    double b6 = 0.0;  //!< % floating-point data
    double b7 = 0.0;  //!< % data-driven addressing
    double b8 = 0.0;  //!< % indirect addressing
    double b9 = 0.0;  //!< % read-only shared data
    double b10 = 0.0; //!< % read-write shared data
    double b11 = 0.0; //!< % locally accessed data
    double b12 = 0.0; //!< % data contended via atomics
    double b13 = 0.0; //!< barriers per iteration (x0.1)

    /** Flat view for feature-vector assembly. */
    std::array<double, 13> asArray() const;

    /** Phase-mix sum B1+...+B5 (should be ~1 for real workloads). */
    double phaseSum() const { return b1 + b2 + b3 + b4 + b5; }

    /**
     * Validate ranges: every variable in [0, 1]. @return a diagnostic
     * string, empty when valid.
     */
    std::string validate() const;

    /** "[b1, ..., b13]" for diagnostics. */
    std::string toString() const;

    bool operator==(const BVariables &) const = default;
};

} // namespace heteromap

#endif // HETEROMAP_FEATURES_BVARS_HH
