/**
 * @file
 * Input (I) variables, Section III-B: four normalized, 0.1-discretized
 * characteristics of an input graph that the predictors consume.
 *
 *   I1 - graph size (vertex count)
 *   I2 - edge density (edge count)
 *   I3 - maximum degree
 *   I4 - diameter
 *
 * Normalization follows the paper's scheme of comparing against the
 * largest values available in literature (Table I maxima), with the
 * exact curve reverse-engineered from the anchor values the paper
 * quotes in Fig. 4 (USA-Cal = [0.1, 0.1, 0.0, 0.8], Twitter I3 = 1,
 * Rgg I4 = 1, Friendster I1 = I2 = 0.8, I4 = 0 for low-diameter
 * graphs): a two-decade logarithmic score for I1/I3/I4 and a linear
 * ratio with a one-increment floor for I2.
 */

#ifndef HETEROMAP_FEATURES_IVARS_HH
#define HETEROMAP_FEATURES_IVARS_HH

#include <array>
#include <string>

#include "graph/datasets.hh"
#include "graph/props.hh"

namespace heteromap {

/** The four discretized input variables, each in {0.0, 0.1, ..., 1.0}. */
struct IVariables {
    double i1 = 0.0; //!< vertex count
    double i2 = 0.0; //!< edge density
    double i3 = 0.0; //!< maximum degree
    double i4 = 0.0; //!< diameter

    /** Flat view for feature-vector assembly. */
    std::array<double, 4> asArray() const { return {i1, i2, i3, i4}; }

    /** Derived average-degree term used by the M equations (Sec. IV):
     *  Avg.Deg = |I3 - I2/I1| with a zero-guard on I1. */
    double avgDegreeTerm() const;

    /** Derived degree-diameter term: Avg.Deg.Dia = |(I4 + Avg.Deg)/2|. */
    double avgDegreeDiameterTerm() const;

    /** "[i1, i2, i3, i4]" for diagnostics. */
    std::string toString() const;

    bool operator==(const IVariables &) const = default;
};

/**
 * Extract I variables from graph characteristics, normalizing against
 * @p maxima. Values snap to the 0.1 grid.
 */
IVariables extractIVariables(const GraphStats &stats,
                             const LiteratureMaxima &maxima);

/** Convenience overload using the Table I literature maxima. */
IVariables extractIVariables(const GraphStats &stats);

/**
 * Measure @p graph through the global GraphStats cache
 * (graph/stats_cache.hh), then extract against the Table I maxima —
 * the one-call online featurization path. Repeat extractions of a
 * structurally identical graph skip the measurement sweeps.
 */
IVariables extractIVariables(const Graph &graph);

/** Extract from a Dataset's *nominal* (paper-reported) stats. */
IVariables extractIVariables(const Dataset &dataset);

/**
 * @name Individual normalization curves (exposed for tests).
 * @{
 */

/** Two-decade log score: 1 - log10(max/value)/2, clamped to [0,1]. */
double decadeScore(double value, double max_value, double decades = 2.0);

/** Linear ratio with a 0.1 floor for any positive value. */
double linearFloorScore(double value, double max_value);

/** @} */

} // namespace heteromap

#endif // HETEROMAP_FEATURES_IVARS_HH
