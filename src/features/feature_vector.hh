/**
 * @file
 * The 17-element (B, I) feature vector the automated predictors take
 * as input — 13 benchmark variables followed by 4 input variables,
 * matching the paper's 17 input neurons (Fig. 10).
 */

#ifndef HETEROMAP_FEATURES_FEATURE_VECTOR_HH
#define HETEROMAP_FEATURES_FEATURE_VECTOR_HH

#include <array>
#include <vector>

#include "features/bvars.hh"
#include "features/ivars.hh"

namespace heteromap {

/** Number of predictor inputs: 13 B variables + 4 I variables. */
inline constexpr std::size_t kNumFeatures = 17;

/** Combined (B, I) sample. */
struct FeatureVector {
    BVariables b;
    IVariables i;

    /** Flatten to [b1..b13, i1..i4]. */
    std::array<double, kNumFeatures> asArray() const;

    /** Flatten to a std::vector (for the linear-algebra layer). */
    std::vector<double> asVector() const;

    bool operator==(const FeatureVector &) const = default;
};

/** Rebuild a FeatureVector from a flat array. */
FeatureVector featureVectorFromArray(
    const std::array<double, kNumFeatures> &flat);

} // namespace heteromap

#endif // HETEROMAP_FEATURES_FEATURE_VECTOR_HH
