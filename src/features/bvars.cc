/**
 * @file
 * B-variable helpers.
 */

#include "features/bvars.hh"

#include <sstream>

namespace heteromap {

std::array<double, 13>
BVariables::asArray() const
{
    return {b1, b2, b3, b4, b5, b6, b7, b8, b9, b10, b11, b12, b13};
}

std::string
BVariables::validate() const
{
    auto values = asArray();
    std::ostringstream oss;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] < 0.0 || values[i] > 1.0) {
            oss << "B" << (i + 1) << "=" << values[i]
                << " outside [0, 1]; ";
        }
    }
    return oss.str();
}

std::string
BVariables::toString() const
{
    std::ostringstream oss;
    oss << "[";
    auto values = asArray();
    for (std::size_t i = 0; i < values.size(); ++i)
        oss << values[i] << (i + 1 == values.size() ? "]" : ", ");
    return oss.str();
}

} // namespace heteromap
