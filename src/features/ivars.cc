/**
 * @file
 * I-variable extraction implementation.
 */

#include "features/ivars.hh"

#include <cmath>
#include <sstream>

#include "graph/stats_cache.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace heteromap {

double
IVariables::avgDegreeTerm() const
{
    double ratio = i1 > 0.0 ? i2 / i1 : i2;
    return clamp(std::fabs(i3 - ratio), 0.0, 1.0);
}

double
IVariables::avgDegreeDiameterTerm() const
{
    return clamp(std::fabs((i4 + avgDegreeTerm()) / 2.0), 0.0, 1.0);
}

std::string
IVariables::toString() const
{
    std::ostringstream oss;
    oss << "[" << i1 << ", " << i2 << ", " << i3 << ", " << i4 << "]";
    return oss.str();
}

double
decadeScore(double value, double max_value, double decades)
{
    HM_ASSERT(max_value > 0.0, "decadeScore requires a positive maximum");
    HM_ASSERT(decades > 0.0, "decadeScore requires positive decades");
    if (value <= 0.0)
        return 0.0;
    double gap = std::log10(max_value / value);
    return clamp(1.0 - gap / decades, 0.0, 1.0);
}

double
linearFloorScore(double value, double max_value)
{
    HM_ASSERT(max_value > 0.0,
              "linearFloorScore requires a positive maximum");
    if (value <= 0.0)
        return 0.0;
    return clamp(std::max(value / max_value, 0.1), 0.0, 1.0);
}

IVariables
extractIVariables(const GraphStats &stats, const LiteratureMaxima &maxima)
{
    IVariables vars;
    vars.i1 = discretize01(
        decadeScore(static_cast<double>(stats.numVertices),
                    maxima.maxVertices));
    vars.i2 = discretize01(
        linearFloorScore(static_cast<double>(stats.numEdges),
                         maxima.maxEdges));
    vars.i3 = discretize01(
        decadeScore(static_cast<double>(stats.maxDegree),
                    maxima.maxDegree));
    vars.i4 = discretize01(
        decadeScore(static_cast<double>(stats.diameter),
                    maxima.maxDiameter));
    return vars;
}

IVariables
extractIVariables(const GraphStats &stats)
{
    return extractIVariables(stats, literatureMaxima());
}

IVariables
extractIVariables(const Graph &graph)
{
    return extractIVariables(globalStatsCache().measure(graph),
                             literatureMaxima());
}

IVariables
extractIVariables(const Dataset &dataset)
{
    return extractIVariables(dataset.nominal(), literatureMaxima());
}

} // namespace heteromap
