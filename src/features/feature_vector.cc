/**
 * @file
 * FeatureVector flattening helpers.
 */

#include "features/feature_vector.hh"

namespace heteromap {

std::array<double, kNumFeatures>
FeatureVector::asArray() const
{
    std::array<double, kNumFeatures> flat{};
    auto bs = b.asArray();
    auto is = i.asArray();
    std::size_t k = 0;
    for (double v : bs)
        flat[k++] = v;
    for (double v : is)
        flat[k++] = v;
    return flat;
}

std::vector<double>
FeatureVector::asVector() const
{
    auto flat = asArray();
    return {flat.begin(), flat.end()};
}

FeatureVector
featureVectorFromArray(const std::array<double, kNumFeatures> &flat)
{
    FeatureVector fv;
    fv.b.b1 = flat[0];
    fv.b.b2 = flat[1];
    fv.b.b3 = flat[2];
    fv.b.b4 = flat[3];
    fv.b.b5 = flat[4];
    fv.b.b6 = flat[5];
    fv.b.b7 = flat[6];
    fv.b.b8 = flat[7];
    fv.b.b9 = flat[8];
    fv.b.b10 = flat[9];
    fv.b.b11 = flat[10];
    fv.b.b12 = flat[11];
    fv.b.b13 = flat[12];
    fv.i.i1 = flat[13];
    fv.i.i2 = flat[14];
    fv.i.i3 = flat[15];
    fv.i.i4 = flat[16];
    return fv;
}

} // namespace heteromap
