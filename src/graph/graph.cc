/**
 * @file
 * CSR graph implementation.
 */

#include "graph/graph.hh"

#include <algorithm>

#include "util/logging.hh"

namespace heteromap {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors,
             std::vector<float> weights)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)),
      weights_(std::move(weights))
{
    HM_ASSERT(!offsets_.empty(), "CSR offsets must contain at least [0]");
    HM_ASSERT(offsets_.front() == 0, "CSR offsets must start at 0");
    HM_ASSERT(offsets_.back() == neighbors_.size(),
              "CSR offsets must end at the edge count");
    HM_ASSERT(weights_.empty() || weights_.size() == neighbors_.size(),
              "weight array arity mismatch");
}

uint64_t
Graph::footprintBytes() const
{
    return offsets_.size() * sizeof(EdgeId) +
           neighbors_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(float);
}

EdgeId
Graph::maxDegree() const
{
    EdgeId best = 0;
    for (VertexId v = 0; v < numVertices(); ++v)
        best = std::max(best, degree(v));
    return best;
}

double
Graph::avgDegree() const
{
    if (numVertices() == 0)
        return 0.0;
    return static_cast<double>(numEdges()) /
           static_cast<double>(numVertices());
}

} // namespace heteromap
