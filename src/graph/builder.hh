/**
 * @file
 * Mutable edge-list accumulator that produces an immutable CSR Graph.
 * All generators and the I/O layer build graphs through this class so
 * the CSR invariants are established in exactly one place.
 */

#ifndef HETEROMAP_GRAPH_BUILDER_HH
#define HETEROMAP_GRAPH_BUILDER_HH

#include <vector>

#include "graph/graph.hh"

namespace heteromap {

/** A single weighted arc used during construction. */
struct RawEdge {
    VertexId src;
    VertexId dst;
    float weight;
};

/**
 * Accumulates edges and finalizes them into a CSR Graph.
 *
 * Options:
 *  - symmetrize: add the reverse arc of every edge (undirected graphs);
 *  - dedup: drop parallel arcs (keeping the first weight seen);
 *  - dropSelfLoops: discard u->u arcs.
 */
class GraphBuilder
{
  public:
    /** Create a builder for @p num_vertices vertices. */
    explicit GraphBuilder(VertexId num_vertices);

    /** Add one directed arc @p src -> @p dst with @p weight. */
    void addEdge(VertexId src, VertexId dst, float weight = 1.0f);

    /** Request reverse-arc insertion at build time. */
    GraphBuilder &symmetrize(bool on = true);

    /** Request parallel-arc removal at build time. */
    GraphBuilder &dedup(bool on = true);

    /** Request self-loop removal at build time. */
    GraphBuilder &dropSelfLoops(bool on = true);

    /** Attach uniform-random weights in [lo, hi) at build time. */
    GraphBuilder &randomWeights(uint64_t seed, float lo = 1.0f,
                                float hi = 64.0f);

    /** @return number of arcs currently accumulated (pre-options). */
    std::size_t pendingEdges() const { return edges_.size(); }

    /** @return vertex count the builder was created with. */
    VertexId numVertices() const { return numVertices_; }

    /**
     * Finalize into a CSR graph with sorted adjacency lists. The
     * builder is left empty afterwards.
     */
    Graph build(bool weighted = true);

  private:
    VertexId numVertices_;
    std::vector<RawEdge> edges_;
    bool symmetrize_ = false;
    bool dedup_ = false;
    bool dropSelfLoops_ = false;
    bool randomWeights_ = false;
    uint64_t weightSeed_ = 0;
    float weightLo_ = 1.0f;
    float weightHi_ = 64.0f;
};

} // namespace heteromap

#endif // HETEROMAP_GRAPH_BUILDER_HH
