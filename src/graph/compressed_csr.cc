/**
 * @file
 * Delta-encoded compressed CSR implementation.
 */

#include "graph/compressed_csr.hh"

namespace heteromap {

namespace {

/** Zigzag-encode @p value and append it as a varint. */
void
appendDelta(std::vector<uint8_t> &blob, int64_t value)
{
    auto raw = static_cast<uint64_t>((value << 1) ^ (value >> 63));
    while (raw >= 0x80) {
        blob.push_back(static_cast<uint8_t>(raw) | 0x80);
        raw >>= 7;
    }
    blob.push_back(static_cast<uint8_t>(raw));
}

} // namespace

CompressedCsr
CompressedCsr::fromGraph(const Graph &graph)
{
    CompressedCsr out;
    out.offsets_ = graph.offsets();
    if (graph.hasWeights()) {
        const auto edges = static_cast<std::size_t>(graph.numEdges());
        out.weights_.reserve(edges);
        for (EdgeId e = 0; e < edges; ++e)
            out.weights_.push_back(graph.edgeWeight(e));
    }

    const VertexId num_vertices = graph.numVertices();
    out.byteOffsets_.resize(static_cast<std::size_t>(num_vertices) + 1);
    // Sorted adjacency (the GraphBuilder invariant) makes the deltas
    // small non-negative gaps; zigzag keeps arbitrary orders lossless
    // too, at one extra bit.
    out.blob_.reserve(static_cast<std::size_t>(graph.numEdges()));
    for (VertexId v = 0; v < num_vertices; ++v) {
        out.byteOffsets_[v] = out.blob_.size();
        int64_t prev = static_cast<int64_t>(v);
        for (VertexId u : graph.neighbors(v)) {
            appendDelta(out.blob_, static_cast<int64_t>(u) - prev);
            prev = static_cast<int64_t>(u);
        }
    }
    if (num_vertices > 0)
        out.byteOffsets_[num_vertices] = out.blob_.size();
    return out;
}

uint64_t
CompressedCsr::footprintBytes() const
{
    return blob_.size() +
           offsets_.size() * sizeof(EdgeId) +
           byteOffsets_.size() * sizeof(uint64_t) +
           weights_.size() * sizeof(float);
}

Graph
CompressedCsr::decompress() const
{
    // A default-constructed Graph has no offsets array at all (not
    // even the leading 0 the validating constructor requires), so an
    // empty compression round-trips back through the default state.
    if (offsets_.empty())
        return Graph{};
    std::vector<VertexId> neighbors;
    neighbors.reserve(static_cast<std::size_t>(numEdges()));
    const VertexId num_vertices = numVertices();
    for (VertexId v = 0; v < num_vertices; ++v)
        forEachNeighbor(v, [&](VertexId u) { neighbors.push_back(u); });
    return Graph(offsets_, std::move(neighbors), weights_);
}

} // namespace heteromap
