/**
 * @file
 * Delta-encoded compressed CSR: the opt-in storage format for the
 * chunked-streaming path. Neighbor lists are stored as zigzag-varint
 * deltas — the first neighbor relative to its source vertex, each
 * subsequent neighbor relative to its predecessor — which shrinks the
 * dominant neighbor array several-fold on the sorted adjacency lists
 * the GraphBuilder produces (local edges encode in 1-2 bytes instead
 * of 4). The offsets array stays uncompressed so degree statistics
 * (graph/props.hh's blocked sweep) run on it directly, without
 * touching the compressed payload at all.
 *
 * Lossless by construction: decompress() rebuilds the exact CSR
 * arrays (and verbatim-stored weights) fromGraph() consumed, and
 * forEachNeighbor() streams a vertex's list without materializing the
 * whole graph.
 */

#ifndef HETEROMAP_GRAPH_COMPRESSED_CSR_HH
#define HETEROMAP_GRAPH_COMPRESSED_CSR_HH

#include <cstdint>
#include <vector>

#include "graph/graph.hh"

namespace heteromap {

/** Immutable delta-compressed CSR graph. */
class CompressedCsr
{
  public:
    CompressedCsr() = default;

    /** Compress @p graph (weights, if any, are stored verbatim). */
    static CompressedCsr fromGraph(const Graph &graph);

    VertexId
    numVertices() const
    {
        return offsets_.empty()
            ? 0 : static_cast<VertexId>(offsets_.size() - 1);
    }

    EdgeId numEdges() const { return offsets_.empty() ? 0 : offsets_.back(); }

    /** @return out-degree of @p v (straight off the offsets array). */
    EdgeId
    degree(VertexId v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    /** Uncompressed offsets array (size V+1), for degree sweeps. */
    const std::vector<EdgeId> &offsets() const { return offsets_; }

    /** Bytes of the encoded neighbor payload. */
    uint64_t payloadBytes() const { return blob_.size(); }

    /** Total resident bytes: payload + offsets + byte index (+ raw
     *  weights when present). */
    uint64_t footprintBytes() const;

    /** Rebuild the exact Graph fromGraph() consumed. */
    Graph decompress() const;

    /**
     * Stream @p v's neighbor list in storage order, decoding deltas
     * on the fly — the chunked-streaming path's per-vertex access,
     * with no per-call allocation.
     */
    template <typename Fn>
    void
    forEachNeighbor(VertexId v, Fn &&fn) const
    {
        const uint8_t *p = blob_.data() + byteOffsets_[v];
        const EdgeId deg = degree(v);
        int64_t prev = static_cast<int64_t>(v);
        for (EdgeId e = 0; e < deg; ++e) {
            prev += readDelta(p);
            fn(static_cast<VertexId>(prev));
        }
    }

  private:
    /** Decode one zigzag varint and advance @p p. */
    static int64_t
    readDelta(const uint8_t *&p)
    {
        uint64_t raw = 0;
        unsigned shift = 0;
        while (true) {
            const uint8_t byte = *p++;
            raw |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0)
                break;
            shift += 7;
        }
        // Zigzag: even raw -> non-negative, odd -> negative.
        return static_cast<int64_t>(raw >> 1) ^
               -static_cast<int64_t>(raw & 1);
    }

    std::vector<EdgeId> offsets_;        //!< uncompressed, size V+1
    std::vector<uint64_t> byteOffsets_;  //!< vertex -> blob start
    std::vector<uint8_t> blob_;          //!< zigzag-varint deltas
    std::vector<float> weights_;         //!< verbatim (may be empty)
};

} // namespace heteromap

#endif // HETEROMAP_GRAPH_COMPRESSED_CSR_HH
