/**
 * @file
 * GraphBuilder implementation: edge accumulation, option application,
 * and counting-sort CSR finalization.
 */

#include "graph/builder.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : numVertices_(num_vertices)
{
}

void
GraphBuilder::addEdge(VertexId src, VertexId dst, float weight)
{
    HM_ASSERT(src < numVertices_, "edge source ", src, " out of range");
    HM_ASSERT(dst < numVertices_, "edge target ", dst, " out of range");
    edges_.push_back({src, dst, weight});
}

GraphBuilder &
GraphBuilder::symmetrize(bool on)
{
    symmetrize_ = on;
    return *this;
}

GraphBuilder &
GraphBuilder::dedup(bool on)
{
    dedup_ = on;
    return *this;
}

GraphBuilder &
GraphBuilder::dropSelfLoops(bool on)
{
    dropSelfLoops_ = on;
    return *this;
}

GraphBuilder &
GraphBuilder::randomWeights(uint64_t seed, float lo, float hi)
{
    HM_ASSERT(lo < hi, "weight range must be non-empty");
    randomWeights_ = true;
    weightSeed_ = seed;
    weightLo_ = lo;
    weightHi_ = hi;
    return *this;
}

Graph
GraphBuilder::build(bool weighted)
{
    std::vector<RawEdge> work;
    work.swap(edges_);

    if (dropSelfLoops_) {
        std::erase_if(work, [](const RawEdge &e) { return e.src == e.dst; });
    }

    if (symmetrize_) {
        std::size_t original = work.size();
        work.reserve(original * 2);
        for (std::size_t i = 0; i < original; ++i) {
            const RawEdge &e = work[i];
            work.push_back({e.dst, e.src, e.weight});
        }
    }

    if (randomWeights_) {
        // Assign deterministic weights keyed on the endpoint pair so
        // both arcs of a symmetrized edge get the same weight.
        for (auto &e : work) {
            uint64_t key = (static_cast<uint64_t>(std::min(e.src, e.dst))
                            << 32) |
                           std::max(e.src, e.dst);
            Rng rng(weightSeed_ ^ (key * 0x9e3779b97f4a7c15ULL));
            e.weight = static_cast<float>(
                rng.nextDouble(weightLo_, weightHi_));
        }
    }

    std::sort(work.begin(), work.end(),
              [](const RawEdge &a, const RawEdge &b) {
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.dst < b.dst;
              });

    if (dedup_) {
        auto last = std::unique(work.begin(), work.end(),
                                [](const RawEdge &a, const RawEdge &b) {
                                    return a.src == b.src && a.dst == b.dst;
                                });
        work.erase(last, work.end());
    }

    std::vector<EdgeId> offsets(static_cast<std::size_t>(numVertices_) + 1,
                                0);
    for (const auto &e : work)
        ++offsets[e.src + 1];
    for (std::size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<VertexId> neighbors(work.size());
    std::vector<float> weights;
    if (weighted)
        weights.resize(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) {
        neighbors[i] = work[i].dst;
        if (weighted)
            weights[i] = work[i].weight;
    }

    return Graph(std::move(offsets), std::move(neighbors),
                 std::move(weights));
}

} // namespace heteromap
