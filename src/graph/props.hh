/**
 * @file
 * Structural graph properties: the measured counterparts of the
 * paper's I variables (vertex count, edge density, maximum degree,
 * diameter) plus auxiliary statistics the performance model consumes
 * (degree variance for divergence, component structure).
 */

#ifndef HETEROMAP_GRAPH_PROPS_HH
#define HETEROMAP_GRAPH_PROPS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace heteromap {

/**
 * Summary of an input graph. When describing one of the paper's real
 * datasets, these fields hold the *nominal* Table I values; when
 * measured from a proxy graph they hold exact (or BFS-approximated,
 * for the diameter) values.
 */
struct GraphStats {
    uint64_t numVertices = 0;
    uint64_t numEdges = 0;       //!< stored arcs
    uint64_t maxDegree = 0;
    double avgDegree = 0.0;
    uint64_t diameter = 0;       //!< hop diameter (approximate)
    double degreeStddev = 0.0;   //!< divergence proxy
    uint64_t footprintBytes = 0; //!< CSR bytes (for memory-size model)

    /** Pretty one-line summary. */
    std::string toString() const;
};

/**
 * Measure @p graph. The diameter is approximated with @p sweeps
 * double-sweep BFS probes (exact on trees/paths, a lower bound in
 * general, accurate in practice); pass sweeps = 0 to skip it.
 */
GraphStats measureGraph(const Graph &graph, unsigned sweeps = 4,
                        uint64_t seed = 1);

/**
 * Single-source hop distances by BFS. Unreachable vertices get
 * UINT32_MAX. Exposed for tests and the diameter estimator.
 */
std::vector<uint32_t> bfsHops(const Graph &graph, VertexId source);

/**
 * Approximate hop diameter via repeated double-sweep BFS from random
 * sources. Returns 0 for graphs with < 2 vertices.
 */
uint64_t approximateDiameter(const Graph &graph, unsigned sweeps,
                             uint64_t seed);

/** @return number of connected components (treating arcs as undirected). */
uint64_t countComponents(const Graph &graph);

} // namespace heteromap

#endif // HETEROMAP_GRAPH_PROPS_HH
