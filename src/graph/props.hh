/**
 * @file
 * Structural graph properties: the measured counterparts of the
 * paper's I variables (vertex count, edge density, maximum degree,
 * diameter) plus auxiliary statistics the performance model consumes
 * (degree variance for divergence, component structure).
 *
 * Measurement runs on the flat-frontier substrate (graph/frontier.hh)
 * and is deterministic by contract: GraphStats is byte-identical for
 * any MeasureOptions::threads value, because every sweep reduces
 * fixed-size chunk partials in chunk-index order.
 */

#ifndef HETEROMAP_GRAPH_PROPS_HH
#define HETEROMAP_GRAPH_PROPS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace heteromap {

class ThreadPool;

/**
 * Summary of an input graph. When describing one of the paper's real
 * datasets, these fields hold the *nominal* Table I values; when
 * measured from a proxy graph they hold exact (or BFS-approximated,
 * for the diameter) values.
 */
struct GraphStats {
    uint64_t numVertices = 0;
    uint64_t numEdges = 0;       //!< stored arcs
    uint64_t maxDegree = 0;
    double avgDegree = 0.0;
    uint64_t diameter = 0;       //!< hop diameter (approximate)
    double degreeStddev = 0.0;   //!< divergence proxy
    uint64_t footprintBytes = 0; //!< CSR bytes (for memory-size model)

    /** Pretty one-line summary. */
    std::string toString() const;
};

/** Knobs for one measureGraph() run. */
struct MeasureOptions {
    /** Double-sweep BFS probes for the diameter; 0 skips it. */
    unsigned sweeps = 4;

    /** Seed for the probe start vertices. */
    uint64_t seed = 1;

    /**
     * Sweep fan-out: 0 uses the process-wide shared pool
     * (ThreadPool::shared()), 1 runs serial inline, N spins up a
     * private N-thread pool. The result is byte-identical for every
     * value — threads only change wall-clock time.
     */
    std::size_t threads = 0;

    /**
     * Cache-blocking factor (vertices per inner block) for the
     * degree/stats sweep; 0 picks the default. Any value is
     * byte-identical: the sweep accumulates exact integer partials
     * (degree sum, sum of squares, max), so the combine order is
     * free, and one floating-point finalization happens at the end.
     */
    std::size_t statsBlock = 0;
};

/**
 * Measure @p graph. The diameter is approximated with @p sweeps
 * double-sweep BFS probes (exact on trees/paths, a lower bound in
 * general, accurate in practice); pass sweeps = 0 to skip it.
 */
GraphStats measureGraph(const Graph &graph, unsigned sweeps = 4,
                        uint64_t seed = 1);

/** Measure @p graph under explicit options (see MeasureOptions). */
GraphStats measureGraph(const Graph &graph,
                        const MeasureOptions &options);

/**
 * Single-source hop distances by BFS. Unreachable vertices get
 * UINT32_MAX. Exposed for tests and workload references.
 */
std::vector<uint32_t> bfsHops(const Graph &graph, VertexId source);

/**
 * Approximate hop diameter via repeated double-sweep BFS from random
 * sources. Returns 0 for graphs with < 2 vertices.
 */
uint64_t approximateDiameter(const Graph &graph, unsigned sweeps,
                             uint64_t seed);

/** @return number of connected components (treating arcs as undirected). */
uint64_t countComponents(const Graph &graph);

/**
 * @return true when the adjacency is symmetric (u in N(v) iff v in
 * N(u)), the precondition for bottom-up BFS levels. One early-exit
 * O(E log d) pass, fanned over @p pool when given. Assumes sorted
 * adjacency lists (the GraphBuilder invariant); an unsorted list can
 * only yield a false negative, which merely disables the bottom-up
 * fast path, never wrong traversal results.
 */
bool hasSymmetricAdjacency(const Graph &graph,
                           ThreadPool *pool = nullptr);

} // namespace heteromap

#endif // HETEROMAP_GRAPH_PROPS_HH
