/**
 * @file
 * Flat-frontier BFS implementation.
 */

#include "graph/frontier.hh"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace heteromap {

namespace {

/** Words needed for @p n one-bit slots. */
std::size_t
wordCount(std::size_t n)
{
    return (n + 63) / 64;
}

/**
 * Atomically claim bit @p v; @return true for the winning claimer.
 * Relaxed order suffices: the pool's wait() barrier orders levels,
 * and within a level a claim only guards first-discovery.
 */
bool
claimBit(std::vector<uint64_t> &bits, VertexId v)
{
    std::atomic_ref<uint64_t> word(bits[v >> 6]);
    const uint64_t mask = uint64_t{1} << (v & 63);
    return (word.fetch_or(mask, std::memory_order_relaxed) & mask) == 0;
}

bool
testBit(const std::vector<uint64_t> &bits, VertexId v)
{
    return (bits[v >> 6] >> (v & 63)) & 1u;
}

} // namespace

void
FrontierScratch::prepare(VertexId num_vertices)
{
    const std::size_t words = wordCount(num_vertices);
    visited.resize(words);
    curBits.resize(words);
    nextBits.resize(words);
    frontier.reserve(num_vertices);
    next.reserve(num_vertices);
}

void
FrontierScratch::clearVisited()
{
    std::fill(visited.begin(), visited.end(), 0);
}

void
forEachChunk(std::size_t count, ThreadPool *pool,
             const std::function<void(std::size_t, std::size_t,
                                      std::size_t)> &fn)
{
    if (count == 0)
        return;
    const std::size_t chunks = (count + kFrontierChunk - 1) / kFrontierChunk;
    if (pool == nullptr || chunks < 2) {
        for (std::size_t c = 0; c < chunks; ++c)
            fn(c, c * kFrontierChunk,
               std::min(count, (c + 1) * kFrontierChunk));
        return;
    }
    pool->parallelFor(chunks, [&](std::size_t c) {
        fn(c, c * kFrontierChunk,
           std::min(count, (c + 1) * kFrontierChunk));
    });
}

namespace {

/**
 * One top-down level: expand scratch.frontier into scratch.next via
 * per-chunk discovery buffers concatenated in chunk order.
 * @return sum of out-degrees of the next frontier (the bottom-up
 * switch signal; an integer sum, so reduction order is moot).
 */
uint64_t
topDownStep(const Graph &graph, FrontierScratch &scratch,
            uint32_t *hops, uint32_t next_level, ThreadPool *pool)
{
    const std::size_t chunks =
        (scratch.frontier.size() + kFrontierChunk - 1) / kFrontierChunk;
    if (scratch.chunkOut.size() < chunks)
        scratch.chunkOut.resize(chunks);

    forEachChunk(scratch.frontier.size(), pool,
                 [&](std::size_t c, std::size_t begin, std::size_t end) {
                     auto &out = scratch.chunkOut[c];
                     out.clear();
                     for (std::size_t i = begin; i < end; ++i) {
                         for (VertexId u :
                              graph.neighbors(scratch.frontier[i])) {
                             if (claimBit(scratch.visited, u)) {
                                 if (hops != nullptr)
                                     hops[u] = next_level;
                                 out.push_back(u);
                             }
                         }
                     }
                 });

    scratch.next.clear();
    uint64_t next_edges = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        for (VertexId u : scratch.chunkOut[c]) {
            scratch.next.push_back(u);
            next_edges += graph.degree(u);
        }
    }
    return next_edges;
}

/** Aggregates of one BFS level's next frontier. All three are
 *  order-free (integer sums, a min), so how the frontier is stored —
 *  flat array or bitmap — cannot change them. */
struct LevelStats {
    uint64_t edges = 0;        //!< sum of out-degrees
    uint64_t size = 0;         //!< vertex count
    VertexId minId = kInvalidVertex;
};

/** Rebuild the flat vertex array from a frontier bitmap (ascending
 *  vertex order), for levels that leave bitmap mode. */
void
materializeBits(const std::vector<uint64_t> &bits,
                std::vector<VertexId> &out)
{
    out.clear();
    for (std::size_t w = 0; w < bits.size(); ++w) {
        uint64_t word = bits[w];
        while (word != 0) {
            out.push_back(static_cast<VertexId>(
                w * 64 +
                static_cast<unsigned>(std::countr_zero(word))));
            word &= word - 1;
        }
    }
}

/**
 * One bottom-up level: every unvisited vertex joins the next frontier
 * when any of its (symmetric) neighbors sits in the current one.
 * Chunks own whole bitmap words, so visited/nextBits updates need no
 * atomics. Leaves the next frontier in scratch.nextBits; when
 * @p materialize is set it is also flattened into scratch.next in
 * ascending vertex order (bitmap-frontier runs skip that store and
 * keep consecutive bottom-up levels entirely in bit form).
 */
LevelStats
bottomUpStep(const Graph &graph, FrontierScratch &scratch,
             uint32_t *hops, uint32_t next_level, ThreadPool *pool,
             bool materialize)
{
    const VertexId num_vertices = graph.numVertices();
    std::fill(scratch.nextBits.begin(), scratch.nextBits.end(), 0);

    forEachChunk(
        num_vertices, pool,
        [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t w = begin / 64; w * 64 < end; ++w) {
                uint64_t unvisited = ~scratch.visited[w];
                if (w == scratch.visited.size() - 1 &&
                    num_vertices % 64 != 0) {
                    // Mask the tail bits beyond the vertex range.
                    unvisited &=
                        (uint64_t{1} << (num_vertices % 64)) - 1;
                }
                while (unvisited != 0) {
                    const auto v = static_cast<VertexId>(
                        w * 64 +
                        static_cast<unsigned>(
                            std::countr_zero(unvisited)));
                    unvisited &= unvisited - 1;
                    for (VertexId u : graph.neighbors(v)) {
                        if (!testBit(scratch.curBits, u))
                            continue;
                        const uint64_t mask = uint64_t{1} << (v & 63);
                        scratch.visited[w] |= mask;
                        scratch.nextBits[w] |= mask;
                        if (hops != nullptr)
                            hops[v] = next_level;
                        break;
                    }
                }
            }
        });

    // Walk the next-frontier bits in ascending vertex order
    // (deterministic by construction) for the switch signals, and
    // flatten them only when the caller still wants the array.
    LevelStats out;
    scratch.next.clear();
    for (std::size_t w = 0; w < scratch.nextBits.size(); ++w) {
        uint64_t word = scratch.nextBits[w];
        while (word != 0) {
            const auto v = static_cast<VertexId>(
                w * 64 +
                static_cast<unsigned>(std::countr_zero(word)));
            word &= word - 1;
            if (materialize)
                scratch.next.push_back(v);
            if (out.size == 0)
                out.minId = v;
            ++out.size;
            out.edges += graph.degree(v);
        }
    }
    return out;
}

} // namespace

BfsResult
flatBfs(const Graph &graph, VertexId source, FrontierScratch &scratch,
        uint32_t *hops, const BfsOptions &options)
{
    const VertexId num_vertices = graph.numVertices();
    HM_ASSERT(source < num_vertices, "BFS source out of range");
    scratch.prepare(num_vertices);
    const bool claimed = claimBit(scratch.visited, source);
    HM_ASSERT(claimed, "flatBfs source already visited");
    if (hops != nullptr)
        hops[source] = 0;

    BfsResult result;
    result.farthest = source;
    result.reached = 1;

    scratch.frontier.assign(1, source);
    uint64_t frontier_edges = graph.degree(source);
    std::size_t frontier_size = 1;
    // In bitmap mode the current frontier lives in scratch.nextBits
    // (last level's output) instead of scratch.frontier.
    bool frontier_in_bits = false;
    bool bottom_up = false;
    uint32_t level = 0;

    while (frontier_size > 0) {
        // Direction choice depends only on deterministic counts, so
        // every thread count walks the identical level sequence.
        if (!bottom_up && options.allowBottomUp &&
            frontier_edges >
                graph.numEdges() / options.bottomUpEdgeDivisor) {
            bottom_up = true;
        } else if (bottom_up &&
                   frontier_size <
                       num_vertices / options.topDownSizeDivisor) {
            bottom_up = false;
        }

        // Fan out only when the level carries real work; thresholds
        // cannot affect results, only the schedule.
        const std::size_t work =
            bottom_up ? num_vertices : frontier_size + frontier_edges;
        ThreadPool *pool = work >= kParallelGrain ? options.pool : nullptr;

        VertexId min_id = kInvalidVertex;
        if (bottom_up) {
            if (frontier_in_bits) {
                // Previous level's bits become this level's frontier.
                std::swap(scratch.curBits, scratch.nextBits);
            } else {
                std::fill(scratch.curBits.begin(),
                          scratch.curBits.end(), 0);
                for (VertexId v : scratch.frontier)
                    scratch.curBits[v >> 6] |= uint64_t{1} << (v & 63);
            }
            const LevelStats next = bottomUpStep(
                graph, scratch, hops, level + 1, pool,
                /*materialize=*/!options.bitmapFrontier);
            frontier_edges = next.edges;
            frontier_size = next.size;
            min_id = next.minId;
            if (options.bitmapFrontier) {
                frontier_in_bits = true;
            } else {
                std::swap(scratch.frontier, scratch.next);
                frontier_in_bits = false;
            }
        } else {
            if (frontier_in_bits) {
                // Narrowed out of bitmap mode: rebuild the array once.
                materializeBits(scratch.nextBits, scratch.frontier);
                frontier_in_bits = false;
            }
            frontier_edges =
                topDownStep(graph, scratch, hops, level + 1, pool);
            std::swap(scratch.frontier, scratch.next);
            frontier_size = scratch.frontier.size();
            if (frontier_size > 0)
                min_id = *std::min_element(scratch.frontier.begin(),
                                           scratch.frontier.end());
        }

        if (frontier_size == 0)
            break;
        ++level;
        result.reached += frontier_size;
        result.farthest = min_id;
    }
    result.depth = level;
    return result;
}

TraversalPlan
planTraversal(uint64_t num_vertices, uint64_t num_edges,
              double avg_degree, double degree_stddev)
{
    TraversalPlan plan;
    if (num_vertices < 2 || num_edges == 0) {
        plan.useBottomUp = false;
        return plan;
    }
    // Road-network-like graphs (near-uniform low degree, long
    // diameter): frontiers never get wide enough for a bottom-up
    // level to beat top-down, so rule it out before anyone pays the
    // O(E log d) symmetry precheck it would require.
    if (avg_degree < 2.0) {
        plan.useBottomUp = false;
        return plan;
    }
    // Power-law / dense graphs: the frontier explodes within a few
    // levels. Switch bottom-up eagerly (smaller edge threshold), hold
    // it until the frontier is genuinely narrow again, and keep the
    // wide levels in bitmap form instead of re-materializing vertex
    // arrays.
    const double skew =
        degree_stddev / std::max(avg_degree, 1e-9);
    if (skew >= 1.0 || avg_degree >= 16.0) {
        plan.bottomUpEdgeDivisor = 20;
        plan.topDownSizeDivisor = 48;
        plan.bitmapFrontier = true;
    }
    return plan;
}

} // namespace heteromap
