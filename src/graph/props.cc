/**
 * @file
 * Graph property measurement implementation.
 */

#include "graph/props.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>

#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {

std::string
GraphStats::toString() const
{
    std::ostringstream oss;
    oss << "V=" << numVertices << " E=" << numEdges
        << " maxDeg=" << maxDegree << " avgDeg=" << avgDegree
        << " dia=" << diameter;
    return oss.str();
}

std::vector<uint32_t>
bfsHops(const Graph &graph, VertexId source)
{
    HM_ASSERT(source < graph.numVertices(), "BFS source out of range");
    std::vector<uint32_t> hops(graph.numVertices(), UINT32_MAX);
    std::deque<VertexId> frontier{source};
    hops[source] = 0;
    while (!frontier.empty()) {
        VertexId v = frontier.front();
        frontier.pop_front();
        for (VertexId u : graph.neighbors(v)) {
            if (hops[u] == UINT32_MAX) {
                hops[u] = hops[v] + 1;
                frontier.push_back(u);
            }
        }
    }
    return hops;
}

namespace {

/** @return (farthest reachable vertex, its hop distance) from source. */
std::pair<VertexId, uint32_t>
farthestFrom(const Graph &graph, VertexId source)
{
    auto hops = bfsHops(graph, source);
    VertexId best = source;
    uint32_t best_hops = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (hops[v] != UINT32_MAX && hops[v] > best_hops) {
            best = v;
            best_hops = hops[v];
        }
    }
    return {best, best_hops};
}

} // namespace

uint64_t
approximateDiameter(const Graph &graph, unsigned sweeps, uint64_t seed)
{
    if (graph.numVertices() < 2 || graph.numEdges() == 0)
        return 0;
    Rng rng(seed);
    uint64_t best = 0;
    for (unsigned i = 0; i < std::max(1u, sweeps); ++i) {
        auto start =
            static_cast<VertexId>(rng.nextBounded(graph.numVertices()));
        // Double sweep: farthest vertex from a random start, then the
        // eccentricity of that vertex, which is exact on trees and a
        // tight lower bound in general.
        auto [mid, _] = farthestFrom(graph, start);
        auto [end, dist] = farthestFrom(graph, mid);
        (void)end;
        best = std::max<uint64_t>(best, dist);
    }
    return best;
}

GraphStats
measureGraph(const Graph &graph, unsigned sweeps, uint64_t seed)
{
    GraphStats stats;
    stats.numVertices = graph.numVertices();
    stats.numEdges = graph.numEdges();
    stats.maxDegree = graph.maxDegree();
    stats.avgDegree = graph.avgDegree();
    stats.footprintBytes = graph.footprintBytes();

    double var = 0.0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        double d = static_cast<double>(graph.degree(v)) - stats.avgDegree;
        var += d * d;
    }
    if (graph.numVertices() > 0)
        var /= static_cast<double>(graph.numVertices());
    stats.degreeStddev = std::sqrt(var);

    if (sweeps > 0)
        stats.diameter = approximateDiameter(graph, sweeps, seed);
    return stats;
}

uint64_t
countComponents(const Graph &graph)
{
    std::vector<bool> seen(graph.numVertices(), false);
    uint64_t components = 0;
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (seen[v])
            continue;
        ++components;
        std::deque<VertexId> frontier{v};
        seen[v] = true;
        while (!frontier.empty()) {
            VertexId w = frontier.front();
            frontier.pop_front();
            for (VertexId u : graph.neighbors(w)) {
                if (!seen[u]) {
                    seen[u] = true;
                    frontier.push_back(u);
                }
            }
        }
    }
    return components;
}

} // namespace heteromap
