/**
 * @file
 * Graph property measurement implementation. All sweeps share the
 * flat-frontier machinery (graph/frontier.hh) and the fixed-chunk
 * reduction discipline that makes results thread-count-invariant.
 */

#include "graph/props.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>

#include "graph/frontier.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace heteromap {

std::string
GraphStats::toString() const
{
    std::ostringstream oss;
    oss << "V=" << numVertices << " E=" << numEdges
        << " maxDeg=" << maxDegree << " avgDeg=" << avgDegree
        << " dia=" << diameter;
    return oss.str();
}

std::vector<uint32_t>
bfsHops(const Graph &graph, VertexId source)
{
    HM_ASSERT(source < graph.numVertices(), "BFS source out of range");
    std::vector<uint32_t> hops(graph.numVertices(), UINT32_MAX);
    FrontierScratch scratch;
    scratch.prepare(graph.numVertices());
    scratch.clearVisited();
    // Serial and top-down only: the public contract follows out-arcs
    // and cannot assume the symmetry bottom-up steps require.
    flatBfs(graph, source, scratch, hops.data());
    return hops;
}

bool
hasSymmetricAdjacency(const Graph &graph, ThreadPool *pool)
{
    std::atomic<bool> asymmetric{false};
    const auto num_vertices =
        static_cast<std::size_t>(graph.numVertices());
    forEachChunk(
        num_vertices,
        num_vertices >= kParallelGrain ? pool : nullptr,
        [&](std::size_t, std::size_t begin, std::size_t end) {
            if (asymmetric.load(std::memory_order_relaxed))
                return;
            for (std::size_t i = begin; i < end; ++i) {
                const auto v = static_cast<VertexId>(i);
                for (VertexId u : graph.neighbors(v)) {
                    auto back = graph.neighbors(u);
                    if (!std::binary_search(back.begin(), back.end(),
                                            v)) {
                        asymmetric.store(true,
                                         std::memory_order_relaxed);
                        return;
                    }
                }
            }
        });
    return !asymmetric.load();
}

namespace {

/**
 * Serializes parallel sections that borrow the process-wide shared
 * pool: ThreadPool::parallelFor's completion barrier is pool-global,
 * so two concurrent measurements must not interleave on one pool.
 */
std::mutex &
sharedPoolMutex()
{
    static std::mutex mutex;
    return mutex;
}

uint64_t
diameterSweeps(const Graph &graph, unsigned sweeps, uint64_t seed,
               ThreadPool *pool)
{
    if (graph.numVertices() < 2 || graph.numEdges() == 0)
        return 0;
    // Bottom-up levels are only sound on symmetric adjacency; check
    // once (an O(E log d) early-exit pass) and amortize it over the
    // 2 * sweeps O(E) traversals it can accelerate.
    BfsOptions options;
    options.allowBottomUp = hasSymmetricAdjacency(graph, pool);
    options.pool = pool;

    Rng rng(seed);
    FrontierScratch scratch;
    uint64_t best = 0;
    for (unsigned i = 0; i < std::max(1u, sweeps); ++i) {
        auto start =
            static_cast<VertexId>(rng.nextBounded(graph.numVertices()));
        // Double sweep: farthest vertex from a random start, then the
        // eccentricity of that vertex, which is exact on trees and a
        // tight lower bound in general. The farthest vertex falls out
        // of the traversal itself (min id of the deepest level, the
        // same vertex the old O(V) argmax scan produced).
        scratch.clearVisited();
        BfsResult first = flatBfs(graph, start, scratch, nullptr,
                                  options);
        scratch.clearVisited();
        BfsResult second = flatBfs(graph, first.farthest, scratch,
                                   nullptr, options);
        best = std::max<uint64_t>(best, second.depth);
    }
    return best;
}

/**
 * Fused single pass over the vertices: maximum degree and the degree
 * variance accumulator together, reduced per fixed chunk and combined
 * in chunk order so the floating-point sum is identical for any
 * thread count.
 */
void
degreeSweep(const Graph &graph, GraphStats &stats, ThreadPool *pool)
{
    const auto num_vertices =
        static_cast<std::size_t>(graph.numVertices());
    if (num_vertices == 0)
        return;

    const std::size_t chunks =
        (num_vertices + kFrontierChunk - 1) / kFrontierChunk;
    std::vector<uint64_t> chunk_max(chunks, 0);
    std::vector<double> chunk_var(chunks, 0.0);
    const double avg = stats.avgDegree;

    forEachChunk(num_vertices,
                 num_vertices >= kParallelGrain ? pool : nullptr,
                 [&](std::size_t c, std::size_t begin, std::size_t end) {
                     uint64_t max_degree = 0;
                     double var = 0.0;
                     for (std::size_t i = begin; i < end; ++i) {
                         const EdgeId degree =
                             graph.degree(static_cast<VertexId>(i));
                         max_degree = std::max<uint64_t>(max_degree,
                                                         degree);
                         const double d =
                             static_cast<double>(degree) - avg;
                         var += d * d;
                     }
                     chunk_max[c] = max_degree;
                     chunk_var[c] = var;
                 });

    double var = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
        stats.maxDegree = std::max(stats.maxDegree, chunk_max[c]);
        var += chunk_var[c];
    }
    stats.degreeStddev =
        std::sqrt(var / static_cast<double>(num_vertices));
}

GraphStats
measureWith(const Graph &graph, const MeasureOptions &options,
            ThreadPool *pool)
{
    GraphStats stats;
    stats.numVertices = graph.numVertices();
    stats.numEdges = graph.numEdges();
    stats.avgDegree = graph.avgDegree();
    stats.footprintBytes = graph.footprintBytes();
    degreeSweep(graph, stats, pool);
    if (options.sweeps > 0)
        stats.diameter =
            diameterSweeps(graph, options.sweeps, options.seed, pool);
    return stats;
}

} // namespace

GraphStats
measureGraph(const Graph &graph, const MeasureOptions &options)
{
    // threads only picks the schedule; measureWith's output is
    // byte-identical for every resolution below.
    if (options.threads == 1)
        return measureWith(graph, options, nullptr);
    if (options.threads == 0) {
        ThreadPool &shared = ThreadPool::shared();
        if (shared.threadCount() <= 1)
            return measureWith(graph, options, nullptr);
        std::lock_guard<std::mutex> lock(sharedPoolMutex());
        return measureWith(graph, options, &shared);
    }
    ThreadPool pool(options.threads);
    return measureWith(graph, options, &pool);
}

GraphStats
measureGraph(const Graph &graph, unsigned sweeps, uint64_t seed)
{
    MeasureOptions options;
    options.sweeps = sweeps;
    options.seed = seed;
    return measureGraph(graph, options);
}

uint64_t
approximateDiameter(const Graph &graph, unsigned sweeps, uint64_t seed)
{
    ThreadPool &shared = ThreadPool::shared();
    if (shared.threadCount() <= 1)
        return diameterSweeps(graph, sweeps, seed, nullptr);
    std::lock_guard<std::mutex> lock(sharedPoolMutex());
    return diameterSweeps(graph, sweeps, seed, &shared);
}

uint64_t
countComponents(const Graph &graph)
{
    FrontierScratch scratch;
    scratch.prepare(graph.numVertices());
    scratch.clearVisited();
    uint64_t components = 0;
    // Successive flood fills share one visited bitmap: flatBfs skips
    // nothing itself, the seed scan below simply never re-seeds a
    // vertex an earlier component already claimed.
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (scratch.isVisited(v))
            continue;
        ++components;
        flatBfs(graph, v, scratch, nullptr);
    }
    return components;
}

} // namespace heteromap
