/**
 * @file
 * Graph property measurement implementation. All sweeps share the
 * flat-frontier machinery (graph/frontier.hh) and the fixed-chunk
 * reduction discipline that makes results thread-count-invariant.
 */

#include "graph/props.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <sstream>

#include "graph/frontier.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace heteromap {

std::string
GraphStats::toString() const
{
    std::ostringstream oss;
    oss << "V=" << numVertices << " E=" << numEdges
        << " maxDeg=" << maxDegree << " avgDeg=" << avgDegree
        << " dia=" << diameter;
    return oss.str();
}

std::vector<uint32_t>
bfsHops(const Graph &graph, VertexId source)
{
    HM_ASSERT(source < graph.numVertices(), "BFS source out of range");
    std::vector<uint32_t> hops(graph.numVertices(), UINT32_MAX);
    FrontierScratch scratch;
    scratch.prepare(graph.numVertices());
    scratch.clearVisited();
    // Serial and top-down only: the public contract follows out-arcs
    // and cannot assume the symmetry bottom-up steps require.
    flatBfs(graph, source, scratch, hops.data());
    return hops;
}

bool
hasSymmetricAdjacency(const Graph &graph, ThreadPool *pool)
{
    std::atomic<bool> asymmetric{false};
    const auto num_vertices =
        static_cast<std::size_t>(graph.numVertices());
    forEachChunk(
        num_vertices,
        num_vertices >= kParallelGrain ? pool : nullptr,
        [&](std::size_t, std::size_t begin, std::size_t end) {
            if (asymmetric.load(std::memory_order_relaxed))
                return;
            for (std::size_t i = begin; i < end; ++i) {
                const auto v = static_cast<VertexId>(i);
                for (VertexId u : graph.neighbors(v)) {
                    auto back = graph.neighbors(u);
                    if (!std::binary_search(back.begin(), back.end(),
                                            v)) {
                        asymmetric.store(true,
                                         std::memory_order_relaxed);
                        return;
                    }
                }
            }
        });
    return !asymmetric.load();
}

namespace {

/**
 * Serializes parallel sections that borrow the process-wide shared
 * pool: ThreadPool::parallelFor's completion barrier is pool-global,
 * so two concurrent measurements must not interleave on one pool.
 */
std::mutex &
sharedPoolMutex()
{
    static std::mutex mutex;
    return mutex;
}

uint64_t
diameterSweeps(const Graph &graph, unsigned sweeps, uint64_t seed,
               ThreadPool *pool, const GraphStats *stats = nullptr)
{
    if (graph.numVertices() < 2 || graph.numEdges() == 0)
        return 0;
    // Model-driven traversal selection: the degree stats measured
    // just before these sweeps pick the direction-switch thresholds
    // and frontier layout (see planTraversal). Thresholds steer only
    // the schedule — hop levels, depth, and farthest vertex are
    // byte-identical for every plan.
    TraversalPlan plan;
    if (stats != nullptr)
        plan = planTraversal(stats->numVertices, stats->numEdges,
                             stats->avgDegree, stats->degreeStddev);
    BfsOptions options;
    options.pool = pool;
    if (plan.useBottomUp) {
        // Bottom-up levels are only sound on symmetric adjacency;
        // check once (an O(E log d) early-exit pass) and amortize it
        // over the 2 * sweeps O(E) traversals it can accelerate. When
        // the plan rules bottom-up out (sparse road-like graphs), the
        // whole check is skipped.
        options.allowBottomUp = hasSymmetricAdjacency(graph, pool);
        options.bottomUpEdgeDivisor = plan.bottomUpEdgeDivisor;
        options.topDownSizeDivisor = plan.topDownSizeDivisor;
        options.bitmapFrontier = plan.bitmapFrontier;
    }

    Rng rng(seed);
    FrontierScratch scratch;
    uint64_t best = 0;
    for (unsigned i = 0; i < std::max(1u, sweeps); ++i) {
        auto start =
            static_cast<VertexId>(rng.nextBounded(graph.numVertices()));
        // Double sweep: farthest vertex from a random start, then the
        // eccentricity of that vertex, which is exact on trees and a
        // tight lower bound in general. The farthest vertex falls out
        // of the traversal itself (min id of the deepest level, the
        // same vertex the old O(V) argmax scan produced).
        scratch.clearVisited();
        BfsResult first = flatBfs(graph, start, scratch, nullptr,
                                  options);
        scratch.clearVisited();
        BfsResult second = flatBfs(graph, first.farthest, scratch,
                                   nullptr, options);
        best = std::max<uint64_t>(best, second.depth);
    }
    return best;
}

/** Default cache-blocking factor for the degree/stats sweep: 256
 *  vertices touch 257 offsets = ~2 KiB of the offsets array, well
 *  inside L1 alongside the accumulator lanes. */
constexpr std::size_t kDefaultStatsBlock = 256;

/** Exact integer partials of one vertex range's degree scan. */
struct DegreePartial {
    uint64_t sum = 0;
    uint64_t sumSq = 0;
    uint64_t max = 0;
};

/**
 * Scan degrees of [begin, end) straight off the CSR offsets array in
 * cache-sized blocks of four independent accumulator lanes. All
 * arithmetic is exact (uint64), so any blocking factor, lane count,
 * or combine order produces the identical partial.
 */
DegreePartial
scanDegrees(const EdgeId *__restrict offsets, std::size_t begin,
            std::size_t end, std::size_t block)
{
    DegreePartial total;
    uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    uint64_t q0 = 0, q1 = 0, q2 = 0, q3 = 0;
    uint64_t m0 = 0, m1 = 0, m2 = 0, m3 = 0;
    for (std::size_t base = begin; base < end; base += block) {
        const std::size_t stop = std::min(end, base + block);
        std::size_t i = base;
        for (; i + 4 <= stop; i += 4) {
            const uint64_t d0 = offsets[i + 1] - offsets[i];
            const uint64_t d1 = offsets[i + 2] - offsets[i + 1];
            const uint64_t d2 = offsets[i + 3] - offsets[i + 2];
            const uint64_t d3 = offsets[i + 4] - offsets[i + 3];
            s0 += d0; s1 += d1; s2 += d2; s3 += d3;
            q0 += d0 * d0; q1 += d1 * d1;
            q2 += d2 * d2; q3 += d3 * d3;
            m0 = std::max(m0, d0); m1 = std::max(m1, d1);
            m2 = std::max(m2, d2); m3 = std::max(m3, d3);
        }
        for (; i < stop; ++i) {
            const uint64_t d = offsets[i + 1] - offsets[i];
            s0 += d;
            q0 += d * d;
            m0 = std::max(m0, d);
        }
    }
    total.sum = s0 + s1 + s2 + s3;
    total.sumSq = q0 + q1 + q2 + q3;
    total.max = std::max(std::max(m0, m1), std::max(m2, m3));
    return total;
}

/**
 * Fused single pass over the CSR offsets: maximum degree plus the
 * exact integer degree moments (sum, sum of squares), reduced per
 * fixed chunk. Because every partial is an exact integer, the result
 * is byte-identical for any thread count AND any blocking factor —
 * the one floating-point step is the final variance expansion
 *
 *   var = sum(d^2) - 2*avg*sum(d) + n*avg^2
 *
 * evaluated once from the combined integers. A uniform-degree graph
 * still yields exactly 0.0: with avg = d exact, the three terms are
 * n*d^2, 2*n*d^2, n*d^2 and cancel exactly.
 */
void
degreeSweep(const Graph &graph, GraphStats &stats, ThreadPool *pool,
            std::size_t stats_block)
{
    const auto num_vertices =
        static_cast<std::size_t>(graph.numVertices());
    if (num_vertices == 0)
        return;
    const std::size_t block =
        stats_block == 0 ? kDefaultStatsBlock : stats_block;
    const EdgeId *const offsets = graph.offsets().data();

    const std::size_t chunks =
        (num_vertices + kFrontierChunk - 1) / kFrontierChunk;
    std::vector<DegreePartial> partials(chunks);

    forEachChunk(num_vertices,
                 num_vertices >= kParallelGrain ? pool : nullptr,
                 [&](std::size_t c, std::size_t begin, std::size_t end) {
                     partials[c] =
                         scanDegrees(offsets, begin, end, block);
                 });

    DegreePartial total;
    for (const DegreePartial &p : partials) {
        total.sum += p.sum;
        total.sumSq += p.sumSq;
        total.max = std::max(total.max, p.max);
    }
    stats.maxDegree = std::max(stats.maxDegree, total.max);
    const double n = static_cast<double>(num_vertices);
    const double avg = stats.avgDegree;
    const double var = static_cast<double>(total.sumSq) -
                       2.0 * avg * static_cast<double>(total.sum) +
                       n * avg * avg;
    stats.degreeStddev = std::sqrt(std::max(0.0, var) / n);
}

GraphStats
measureWith(const Graph &graph, const MeasureOptions &options,
            ThreadPool *pool)
{
    GraphStats stats;
    stats.numVertices = graph.numVertices();
    stats.numEdges = graph.numEdges();
    stats.avgDegree = graph.avgDegree();
    stats.footprintBytes = graph.footprintBytes();
    degreeSweep(graph, stats, pool, options.statsBlock);
    if (options.sweeps > 0)
        stats.diameter = diameterSweeps(graph, options.sweeps,
                                        options.seed, pool, &stats);
    return stats;
}

} // namespace

GraphStats
measureGraph(const Graph &graph, const MeasureOptions &options)
{
    // threads only picks the schedule; measureWith's output is
    // byte-identical for every resolution below.
    if (options.threads == 1)
        return measureWith(graph, options, nullptr);
    if (options.threads == 0) {
        ThreadPool &shared = ThreadPool::shared();
        if (shared.threadCount() <= 1)
            return measureWith(graph, options, nullptr);
        std::lock_guard<std::mutex> lock(sharedPoolMutex());
        return measureWith(graph, options, &shared);
    }
    ThreadPool pool(options.threads);
    return measureWith(graph, options, &pool);
}

GraphStats
measureGraph(const Graph &graph, unsigned sweeps, uint64_t seed)
{
    MeasureOptions options;
    options.sweeps = sweeps;
    options.seed = seed;
    return measureGraph(graph, options);
}

uint64_t
approximateDiameter(const Graph &graph, unsigned sweeps, uint64_t seed)
{
    ThreadPool &shared = ThreadPool::shared();
    if (shared.threadCount() <= 1)
        return diameterSweeps(graph, sweeps, seed, nullptr);
    std::lock_guard<std::mutex> lock(sharedPoolMutex());
    return diameterSweeps(graph, sweeps, seed, &shared);
}

uint64_t
countComponents(const Graph &graph)
{
    FrontierScratch scratch;
    scratch.prepare(graph.numVertices());
    scratch.clearVisited();
    uint64_t components = 0;
    // Successive flood fills share one visited bitmap: flatBfs skips
    // nothing itself, the seed scan below simply never re-seeds a
    // vertex an earlier component already claimed.
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        if (scratch.isVisited(v))
            continue;
        ++components;
        flatBfs(graph, v, scratch, nullptr);
    }
    return components;
}

} // namespace heteromap
