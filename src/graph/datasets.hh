/**
 * @file
 * Registry of the paper's Table I evaluation inputs. Each entry pairs
 * the *nominal* Table I characteristics (used by the I-variable
 * extractor so the prediction path sees the paper's feature values)
 * with a scaled-down synthetic *proxy* graph of the same structural
 * family (used for instrumented execution). See DESIGN.md, Sec. 2.
 */

#ifndef HETEROMAP_GRAPH_DATASETS_HH
#define HETEROMAP_GRAPH_DATASETS_HH

#include <string>
#include <vector>

#include "graph/graph.hh"
#include "graph/props.hh"

namespace heteromap {

/** One evaluation input: nominal stats + lazily built proxy graph. */
class Dataset
{
  public:
    /**
     * @param name       Full Table I name, e.g. "USA-Cal".
     * @param short_name Paper abbreviation, e.g. "CA".
     * @param family     Structural family, e.g. "road", "social".
     * @param nominal    Paper-reported characteristics.
     * @param index      Registry index used to fetch the proxy.
     */
    Dataset(std::string name, std::string short_name, std::string family,
            GraphStats nominal, std::size_t index);

    const std::string &name() const { return name_; }
    const std::string &shortName() const { return shortName_; }
    const std::string &family() const { return family_; }

    /** Paper-reported (Table I) characteristics. */
    const GraphStats &nominal() const { return nominal_; }

    /** Scaled-down proxy graph; built on first use, then cached. */
    const Graph &proxy() const;

    /** Measured stats of the proxy graph (cached alongside it). */
    const GraphStats &proxyStats() const;

  private:
    std::string name_;
    std::string shortName_;
    std::string family_;
    GraphStats nominal_;
    std::size_t index_;
};

/** @return the nine Table I datasets, in paper order. */
const std::vector<Dataset> &evaluationDatasets();

/** Look up a dataset by its paper abbreviation; fatal if unknown. */
const Dataset &datasetByShortName(const std::string &short_name);

/**
 * The literature maxima Section III-B normalizes against: Kron's
 * vertex count, Twitter/Kron edge counts, Twitter's maximum degree,
 * and Rgg's diameter.
 */
struct LiteratureMaxima {
    double maxVertices;
    double maxEdges;
    double maxDegree;
    double maxDiameter;
};

/** @return the normalization constants derived from Table I. */
LiteratureMaxima literatureMaxima();

} // namespace heteromap

#endif // HETEROMAP_GRAPH_DATASETS_HH
