/**
 * @file
 * GraphStats memo cache implementation.
 */

#include "graph/stats_cache.hh"

#include "util/logging.hh"

namespace heteromap {

namespace {

/** splitmix64 finalizer: the per-element mixing step. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Order-sensitive strided hash over @p data: every stride-th element
 * plus the last one, where the stride caps the work at
 * kFingerprintSamples elements. @p seed decorrelates the two arrays'
 * hashes so their 128 combined bits are independent.
 */
template <typename T>
uint64_t
hashSampled(const T *data, std::size_t count, uint64_t seed)
{
    uint64_t h = mix64(seed ^ count);
    if (count == 0)
        return h;
    const std::size_t stride =
        count <= kFingerprintSamples ? 1 : count / kFingerprintSamples;
    for (std::size_t i = 0; i < count; i += stride)
        h = mix64(h ^ static_cast<uint64_t>(data[i]));
    return mix64(h ^ static_cast<uint64_t>(data[count - 1]));
}

} // namespace

GraphFingerprint
fingerprintGraph(const Graph &graph)
{
    GraphFingerprint fp;
    fp.numVertices = graph.numVertices();
    fp.numEdges = graph.numEdges();
    fp.footprintBytes = graph.footprintBytes();
    const auto &offsets = graph.offsets();
    const auto &neighbors = graph.rawNeighbors();
    fp.offsetsHash =
        hashSampled(offsets.data(), offsets.size(), 0x0ff5e75ull);
    fp.neighborsHash =
        hashSampled(neighbors.data(), neighbors.size(), 0xad7ace2ull);
    return fp;
}

uint64_t
mixFingerprint(const GraphFingerprint &fingerprint)
{
    uint64_t h = mix64(fingerprint.numVertices);
    h = mix64(h ^ fingerprint.numEdges);
    h = mix64(h ^ fingerprint.footprintBytes);
    h = mix64(h ^ fingerprint.offsetsHash);
    return mix64(h ^ fingerprint.neighborsHash);
}

std::size_t
GraphStatsCache::KeyHash::operator()(const Key &key) const
{
    uint64_t h = mix64(key.fingerprint.numVertices);
    h = mix64(h ^ key.fingerprint.numEdges);
    h = mix64(h ^ key.fingerprint.footprintBytes);
    h = mix64(h ^ key.fingerprint.offsetsHash);
    h = mix64(h ^ key.fingerprint.neighborsHash);
    h = mix64(h ^ key.sweeps);
    h = mix64(h ^ key.seed);
    return static_cast<std::size_t>(h);
}

GraphStatsCache::Key
GraphStatsCache::makeKey(const Graph &graph,
                         const MeasureOptions &options)
{
    // threads and statsBlock are deliberately NOT part of the key:
    // the determinism contract makes every thread count and blocking
    // factor produce identical stats.
    return {fingerprintGraph(graph), options.sweeps, options.seed};
}

GraphStatsCache::GraphStatsCache(std::size_t capacity,
                                 const char *metrics_prefix)
    : capacity_(capacity),
      hits_(metrics_prefix != nullptr
                ? &telemetry::registry().counter(
                      std::string(metrics_prefix) + ".hits")
                : &ownedHits_),
      misses_(metrics_prefix != nullptr
                  ? &telemetry::registry().counter(
                        std::string(metrics_prefix) + ".misses")
                  : &ownedMisses_),
      evictions_(metrics_prefix != nullptr
                     ? &telemetry::registry().counter(
                           std::string(metrics_prefix) + ".evictions")
                     : &ownedEvictions_)
{
    HM_ASSERT(capacity > 0, "stats cache needs a positive capacity");
}

GraphStats
GraphStatsCache::measure(const Graph &graph,
                         const MeasureOptions &options)
{
    const Key key = makeKey(graph, options);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto found = index_.find(key);
        if (found != index_.end()) {
            hits_->add(1);
            lru_.splice(lru_.begin(), lru_, found->second);
            return found->second->second;
        }
        misses_->add(1);
    }

    // Measure outside the lock: the graph sweep is the expensive
    // part, and racing misses converge on identical stats anyway.
    const GraphStats stats = measureGraph(graph, options);

    std::lock_guard<std::mutex> lock(mutex_);
    auto found = index_.find(key);
    if (found != index_.end()) {
        // A racing miss inserted first; keep its entry.
        lru_.splice(lru_.begin(), lru_, found->second);
        return found->second->second;
    }
    lru_.emplace_front(key, stats);
    index_.emplace(key, lru_.begin());
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        evictions_->add(1);
    }
    return stats;
}

std::optional<GraphStats>
GraphStatsCache::peek(const Graph &graph,
                      const MeasureOptions &options) const
{
    const Key key = makeKey(graph, options);
    std::lock_guard<std::mutex> lock(mutex_);
    auto found = index_.find(key);
    if (found == index_.end())
        return std::nullopt;
    return found->second->second;
}

void
GraphStatsCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    index_.clear();
    lru_.clear();
}

uint64_t
GraphStatsCache::hits() const
{
    return hits_->value();
}

uint64_t
GraphStatsCache::misses() const
{
    return misses_->value();
}

uint64_t
GraphStatsCache::evictions() const
{
    return evictions_->value();
}

std::size_t
GraphStatsCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

GraphStatsCache &
globalStatsCache()
{
    // The global cache is the one whose counters back the
    // "stats_cache.*" registry metrics; private caches stay
    // unregistered so tests don't pollute the process snapshot.
    static GraphStatsCache cache(GraphStatsCache::kDefaultCapacity,
                                 "stats_cache");
    return cache;
}

} // namespace heteromap
