/**
 * @file
 * Streaming graph chunker, our substitute for the Stinger framework
 * the paper uses (Sec. II): graphs larger than an accelerator's main
 * memory are split into vertex-range chunks whose induced subgraphs
 * fit in a byte budget, then streamed and processed one at a time.
 */

#ifndef HETEROMAP_GRAPH_CHUNKER_HH
#define HETEROMAP_GRAPH_CHUNKER_HH

#include <cstdint>
#include <vector>

#include "graph/compressed_csr.hh"
#include "graph/graph.hh"

namespace heteromap {

/**
 * One streamed chunk: the induced subgraph over a contiguous vertex
 * range [firstVertex, firstVertex + localToGlobal.size()), with edges
 * whose *source* lies in the range. Targets outside the range are
 * remapped to local "halo" vertices so algorithms can run unmodified;
 * haloBegin marks where halo vertices start in the local id space.
 */
struct GraphChunk {
    Graph subgraph;
    VertexId firstVertex = 0;
    VertexId haloBegin = 0;                 //!< local ids >= this are halo
    std::vector<VertexId> localToGlobal;    //!< local id -> global id
};

/**
 * Splits a graph into memory-budgeted chunks. Chunk boundaries are
 * chosen greedily so each chunk's CSR footprint (including halo
 * remapping tables) stays within the budget, mirroring how Stinger
 * extracts temporal chunks for accelerator-resident processing.
 */
class GraphChunker
{
  public:
    /**
     * @param graph        Graph to stream (kept by reference).
     * @param budget_bytes Per-chunk memory budget; fatal if any single
     *                     vertex's adjacency alone exceeds it.
     */
    GraphChunker(const Graph &graph, uint64_t budget_bytes);

    /** @return number of chunks the graph was split into. */
    std::size_t numChunks() const { return boundaries_.size() - 1; }

    /** Materialize chunk @p index (0-based). */
    GraphChunk chunk(std::size_t index) const;

    /**
     * Opt-in streaming form of chunk(): the same induced subgraph
     * delta-compressed (graph/compressed_csr.hh), for hosts that
     * stage chunks in a memory budget tighter than the raw CSR —
     * local edges dominate a vertex-range chunk, and local deltas
     * encode in 1-2 bytes. compressed.decompress() reproduces
     * chunk(index).subgraph exactly.
     */
    struct CompressedChunk {
        CompressedCsr subgraph;
        VertexId firstVertex = 0;
        VertexId haloBegin = 0;
        std::vector<VertexId> localToGlobal;
    };
    CompressedChunk compressedChunk(std::size_t index) const;

    /** @return the vertex boundaries [b0=0, b1, ..., bn=V]. */
    const std::vector<VertexId> &boundaries() const { return boundaries_; }

  private:
    const Graph &graph_;
    uint64_t budgetBytes_;
    std::vector<VertexId> boundaries_;
};

} // namespace heteromap

#endif // HETEROMAP_GRAPH_CHUNKER_HH
