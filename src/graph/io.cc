/**
 * @file
 * Edge-list text I/O implementation.
 */

#include "graph/io.hh"

#include <fstream>
#include <memory>
#include <sstream>

#include "graph/builder.hh"
#include "util/logging.hh"

namespace heteromap {

void
writeEdgeList(const Graph &graph, std::ostream &os)
{
    os << "# heteromap edge list v1\n";
    os << "vertices " << graph.numVertices() << "\n";
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        auto nbrs = graph.neighbors(v);
        auto wts = graph.edgeWeights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            os << v << " " << nbrs[i] << " "
               << (wts.empty() ? 1.0f : wts[i]) << "\n";
        }
    }
}

Graph
readEdgeList(std::istream &is)
{
    std::string line;
    VertexId num_vertices = 0;
    bool have_header = false;
    std::unique_ptr<GraphBuilder> builder;
    std::size_t line_no = 0;

    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        if (!have_header) {
            std::string tag;
            ls >> tag >> num_vertices;
            if (ls.fail() || tag != "vertices")
                HM_FATAL("edge list line ", line_no,
                         ": expected 'vertices <count>' header");
            have_header = true;
            builder = std::make_unique<GraphBuilder>(num_vertices);
            continue;
        }
        VertexId src = 0;
        VertexId dst = 0;
        float weight = 1.0f;
        ls >> src >> dst;
        if (ls.fail())
            HM_FATAL("edge list line ", line_no, ": malformed edge");
        ls >> weight;
        if (ls.fail())
            weight = 1.0f;
        if (src >= num_vertices || dst >= num_vertices)
            HM_FATAL("edge list line ", line_no, ": vertex out of range");
        builder->addEdge(src, dst, weight);
    }
    if (!have_header)
        HM_FATAL("edge list missing 'vertices' header");
    return builder->build();
}

void
saveEdgeListFile(const Graph &graph, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        HM_FATAL("cannot open '", path, "' for writing");
    writeEdgeList(graph, os);
}

Graph
loadEdgeListFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        HM_FATAL("cannot open '", path, "' for reading");
    return readEdgeList(is);
}

} // namespace heteromap
