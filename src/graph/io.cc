/**
 * @file
 * Edge-list text I/O implementation.
 */

#include "graph/io.hh"

#include <fstream>
#include <memory>
#include <sstream>

#include "graph/builder.hh"
#include "util/logging.hh"

namespace heteromap {

namespace {

/** Line-numbered recoverable parse/range error. */
template <typename... Args>
Error
lineError(ErrorCode code, std::size_t line_no, Args &&...args)
{
    return makeError(code, line_no, "edge list line ", line_no, ": ",
                     std::forward<Args>(args)...);
}

} // namespace

void
writeEdgeList(const Graph &graph, std::ostream &os)
{
    os << "# heteromap edge list v1\n";
    os << "vertices " << graph.numVertices() << "\n";
    for (VertexId v = 0; v < graph.numVertices(); ++v) {
        auto nbrs = graph.neighbors(v);
        auto wts = graph.edgeWeights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            os << v << " " << nbrs[i] << " "
               << (wts.empty() ? 1.0f : wts[i]) << "\n";
        }
    }
}

Result<Graph>
tryReadEdgeList(std::istream &is)
{
    std::string line;
    long long num_vertices = 0;
    bool have_header = false;
    std::unique_ptr<GraphBuilder> builder;
    std::size_t line_no = 0;

    while (std::getline(is, line)) {
        ++line_no;
        // Tolerate CRLF line endings from Windows-authored files.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        if (!have_header) {
            std::string tag;
            ls >> tag >> num_vertices;
            if (ls.fail() || tag != "vertices")
                return lineError(ErrorCode::Parse, line_no,
                                 "expected 'vertices <count>' header");
            if (num_vertices < 0 ||
                num_vertices >= static_cast<long long>(kInvalidVertex)) {
                return lineError(ErrorCode::OutOfRange, line_no,
                                 "vertex count ", num_vertices,
                                 " outside [0, ", kInvalidVertex, ")");
            }
            have_header = true;
            builder = std::make_unique<GraphBuilder>(
                static_cast<VertexId>(num_vertices));
            continue;
        }
        // Signed reads so "-1 3" is rejected instead of wrapping into
        // a huge unsigned vertex id.
        long long src = 0;
        long long dst = 0;
        float weight = 1.0f;
        ls >> src >> dst;
        if (ls.fail())
            return lineError(ErrorCode::Parse, line_no,
                             "malformed edge");
        ls >> weight;
        if (ls.fail())
            weight = 1.0f;
        if (src < 0 || dst < 0 || src >= num_vertices ||
            dst >= num_vertices) {
            return lineError(ErrorCode::OutOfRange, line_no,
                             "vertex id (", src, ", ", dst,
                             ") outside declared count ", num_vertices);
        }
        if (weight < 0.0f)
            return lineError(ErrorCode::OutOfRange, line_no,
                             "negative edge weight ", weight);
        builder->addEdge(static_cast<VertexId>(src),
                         static_cast<VertexId>(dst), weight);
    }
    if (!have_header)
        return makeError(ErrorCode::Parse, 0,
                         "edge list missing 'vertices' header");
    return builder->build();
}

Graph
readEdgeList(std::istream &is)
{
    return tryReadEdgeList(is).orThrow();
}

void
saveEdgeListFile(const Graph &graph, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        HM_FATAL("cannot open '", path, "' for writing");
    writeEdgeList(graph, os);
}

Result<Graph>
tryLoadEdgeListFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return makeError(ErrorCode::Io, 0, "cannot open '", path,
                         "' for reading");
    return tryReadEdgeList(is);
}

Graph
loadEdgeListFile(const std::string &path)
{
    return tryLoadEdgeListFile(path).orThrow();
}

} // namespace heteromap
