/**
 * @file
 * Graph serialization: a human-readable weighted edge-list text format
 * (one "src dst weight" triple per line, '#' comments, header line with
 * the vertex count) and round-trip loading through GraphBuilder.
 * Parsing is available both as recoverable-Result variants (try*) and
 * as throwing wrappers for callers that prefer exceptions.
 */

#ifndef HETEROMAP_GRAPH_IO_HH
#define HETEROMAP_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/graph.hh"
#include "util/errors.hh"

namespace heteromap {

/** Write @p graph to @p os in edge-list text format. */
void writeEdgeList(const Graph &graph, std::ostream &os);

/**
 * Parse an edge-list stream produced by writeEdgeList (or hand-written
 * in the same format). CRLF line endings are tolerated; malformed
 * lines, vertex ids outside the declared count, and negative weights
 * yield a line-numbered recoverable Error.
 */
Result<Graph> tryReadEdgeList(std::istream &is);

/** Throwing wrapper around tryReadEdgeList (throws FatalError). */
Graph readEdgeList(std::istream &is);

/** Convenience file wrappers around the stream functions. */
void saveEdgeListFile(const Graph &graph, const std::string &path);

/** Load a graph from @p path; errors are recoverable. */
Result<Graph> tryLoadEdgeListFile(const std::string &path);

/** Load a graph from @p path; throws FatalError if unreadable. */
Graph loadEdgeListFile(const std::string &path);

} // namespace heteromap

#endif // HETEROMAP_GRAPH_IO_HH
