/**
 * @file
 * Graph serialization: a human-readable weighted edge-list text format
 * (one "src dst weight" triple per line, '#' comments, header line with
 * the vertex count) and round-trip loading through GraphBuilder.
 */

#ifndef HETEROMAP_GRAPH_IO_HH
#define HETEROMAP_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/graph.hh"

namespace heteromap {

/** Write @p graph to @p os in edge-list text format. */
void writeEdgeList(const Graph &graph, std::ostream &os);

/**
 * Parse an edge-list stream produced by writeEdgeList (or hand-written
 * in the same format). Throws FatalError on malformed input.
 */
Graph readEdgeList(std::istream &is);

/** Convenience file wrappers around the stream functions. */
void saveEdgeListFile(const Graph &graph, const std::string &path);

/** Load a graph from @p path; throws FatalError if unreadable. */
Graph loadEdgeListFile(const std::string &path);

} // namespace heteromap

#endif // HETEROMAP_GRAPH_IO_HH
