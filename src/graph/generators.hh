/**
 * @file
 * Synthetic graph generators. Two serve the paper's training pipeline
 * (uniform-random "GTgraph" style and Kronecker/R-MAT, Table III); the
 * rest produce scaled-down proxies for the Table I evaluation inputs
 * (road grids, random-geometric, dense Erdos-Renyi, power-law social
 * networks) plus tiny fixtures for unit tests.
 */

#ifndef HETEROMAP_GRAPH_GENERATORS_HH
#define HETEROMAP_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/graph.hh"

namespace heteromap {

/**
 * Uniform random graph (GTgraph "random" model): @p num_edges arcs with
 * independently uniform endpoints, symmetrized, deduplicated, weighted.
 */
Graph generateUniformRandom(VertexId num_vertices, EdgeId num_edges,
                            uint64_t seed);

/**
 * R-MAT / stochastic-Kronecker graph with 2^scale vertices and
 * edge_factor * 2^scale arcs before symmetrization. Partition
 * probabilities (a, b, c) follow the usual convention with
 * d = 1 - a - b - c. a >> d produces the skewed degree distributions
 * of social networks.
 */
Graph generateRmat(unsigned scale, double edge_factor, uint64_t seed,
                   double a = 0.57, double b = 0.19, double c = 0.19);

/**
 * Road-network-like graph: a @p width x @p height 4-neighbor grid with
 * a fraction @p rewire of extra local shortcut edges. High diameter,
 * degree ~4, weighted (travel costs).
 */
Graph generateRoadGrid(VertexId width, VertexId height, uint64_t seed,
                       double rewire = 0.02);

/**
 * Random geometric graph: @p num_vertices points in the unit square,
 * edges between pairs closer than @p radius. Moderate degree, very
 * high diameter for small radii (the Rgg-n-24 regime).
 */
Graph generateRandomGeometric(VertexId num_vertices, double radius,
                              uint64_t seed);

/**
 * Dense Erdos-Renyi graph: each unordered pair is connected with
 * probability @p p. Used for the mouse-retina connectomics proxy
 * (562 vertices, ~0.57M arcs at high p).
 */
Graph generateDenseEr(VertexId num_vertices, double p, uint64_t seed);

/**
 * Preferential-attachment (Barabasi-Albert) power-law graph; each new
 * vertex attaches to @p attach existing vertices. Skewed degrees with
 * low diameter, a second social-network proxy family.
 */
Graph generatePreferentialAttachment(VertexId num_vertices,
                                     unsigned attach, uint64_t seed);

/**
 * Mesh-like near-regular graph with uniform degree @p deg and low
 * diameter (random ring lattice + shortcuts). Proxy for CAGE-14-style
 * DNA-electrophoresis matrices: regular degree, tight diameter.
 */
Graph generateMesh(VertexId num_vertices, unsigned deg, uint64_t seed);

/** @name Tiny deterministic fixtures for unit tests.
 *  @{
 */

/** Simple path 0-1-2-...-(n-1), symmetrized, unit weights. */
Graph generatePath(VertexId num_vertices);

/** Cycle over @p num_vertices vertices, symmetrized. */
Graph generateCycle(VertexId num_vertices);

/** Star with vertex 0 at the center. */
Graph generateStar(VertexId num_vertices);

/** Complete graph on @p num_vertices vertices. */
Graph generateComplete(VertexId num_vertices);

/** @} */

} // namespace heteromap

#endif // HETEROMAP_GRAPH_GENERATORS_HH
