/**
 * @file
 * Memoized GraphStats: a thread-safe, bounded LRU cache keyed by a
 * cheap structural fingerprint of the CSR arrays, so repeat
 * deployments of a known graph skip measurement (the dominant online
 * cost for large inputs) entirely.
 *
 * The fingerprint is content-based, not identity-based: two Graph
 * objects holding the same CSR arrays — a copy, or the same chunk
 * re-cut from a stream — hit the same entry. It hashes the vertex
 * and edge counts, the byte footprint, and strided samples of the
 * offset and neighbor arrays (capped at kFingerprintSamples elements
 * per array, so fingerprinting stays O(1)-ish however large the
 * graph). Graphs small enough to fall under the cap are covered
 * exactly; above it the fingerprint is probabilistic — two graphs
 * that agree on counts and on every sampled element collide, which
 * for a performance predictor means serving the structurally-twin
 * graph's stats, not a correctness failure.
 *
 * Measurement parameters (sweeps, seed) are part of the cache key:
 * the same graph measured at different diameter-probe budgets yields
 * different stats and must not share an entry.
 */

#ifndef HETEROMAP_GRAPH_STATS_CACHE_HH
#define HETEROMAP_GRAPH_STATS_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "graph/props.hh"
#include "util/telemetry.hh"

namespace heteromap {

/** Content fingerprint of a graph's CSR structure. */
struct GraphFingerprint {
    uint64_t numVertices = 0;
    uint64_t numEdges = 0;
    uint64_t footprintBytes = 0;
    uint64_t offsetsHash = 0;
    uint64_t neighborsHash = 0;

    bool operator==(const GraphFingerprint &) const = default;
};

/** Elements sampled per CSR array when fingerprinting. */
inline constexpr std::size_t kFingerprintSamples = 4096;

/** Fingerprint @p graph (see the file comment for the scheme). */
GraphFingerprint fingerprintGraph(const Graph &graph);

/**
 * Mix a fingerprint's five fields into one 64-bit hash — the compact
 * graph identity stamped into flight-recorder audit records (the
 * serving batcher's key hash folds sweeps/seed on top, so it is not
 * reusable as a pure graph id).
 */
uint64_t mixFingerprint(const GraphFingerprint &fingerprint);

/** Bounded, thread-safe LRU memo cache for measureGraph results. */
class GraphStatsCache
{
  public:
    /** Default entry bound for the global cache. */
    static constexpr std::size_t kDefaultCapacity = 64;

    /**
     * @param capacity       Entry bound (LRU evicts beyond it).
     * @param metrics_prefix When non-null, the hit/miss/eviction
     *        counters are the shared telemetry-registry counters
     *        "<prefix>.hits" / ".misses" / ".evictions", so a
     *        /metrics-style snapshot and the accessors below read
     *        the *same* atomics and always agree. When null (the
     *        default, used by private test caches) the counters are
     *        cache-owned and unregistered.
     */
    explicit GraphStatsCache(std::size_t capacity = kDefaultCapacity,
                             const char *metrics_prefix = nullptr);

    /**
     * Memoized measureGraph: fingerprint @p graph, return the cached
     * stats on a hit, otherwise measure under @p options and cache
     * the result. Safe to call concurrently; a miss measures outside
     * the lock (two racing misses on one graph both measure — the
     * results are identical by the determinism contract, and one
     * insert wins).
     */
    GraphStats measure(const Graph &graph,
                       const MeasureOptions &options = {});

    /** Cache probe without measuring (does not touch LRU order). */
    std::optional<GraphStats> peek(const Graph &graph,
                                   const MeasureOptions &options = {}) const;

    /** Drop every entry (counters survive). */
    void clear();

    std::size_t capacity() const { return capacity_; }

    /** @name Counters (monotonic over the cache lifetime). @{ */
    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t evictions() const;
    std::size_t size() const;
    /** @} */

  private:
    /** Full key: structure plus measurement parameters. */
    struct Key {
        GraphFingerprint fingerprint;
        unsigned sweeps = 0;
        uint64_t seed = 0;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash {
        std::size_t operator()(const Key &key) const;
    };

    using LruList = std::list<std::pair<Key, GraphStats>>;

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    LruList lru_;  //!< front = most recent
    std::unordered_map<Key, LruList::iterator, KeyHash> index_;

    /** Backing store when no metrics prefix registers the counters. */
    telemetry::Counter ownedHits_, ownedMisses_, ownedEvictions_;
    telemetry::Counter *hits_;
    telemetry::Counter *misses_;
    telemetry::Counter *evictions_;

    static Key makeKey(const Graph &graph, const MeasureOptions &options);
};

/**
 * The process-wide cache every online path shares: HeteroMap's
 * predict entry point, the training sweep's corpus measurement, the
 * dataset registry, and the streaming-chunk example.
 */
GraphStatsCache &globalStatsCache();

} // namespace heteromap

#endif // HETEROMAP_GRAPH_STATS_CACHE_HH
