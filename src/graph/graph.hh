/**
 * @file
 * Immutable compressed-sparse-row (CSR) graph. This is the input
 * substrate every workload, generator, and feature extractor operates
 * on. Graphs are directed at the storage level; undirected graphs are
 * stored symmetrized (both arcs present).
 */

#ifndef HETEROMAP_GRAPH_GRAPH_HH
#define HETEROMAP_GRAPH_GRAPH_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace heteromap {

/** Vertex identifier; dense in [0, numVertices). */
using VertexId = uint32_t;

/** Edge index into the CSR arrays. */
using EdgeId = uint64_t;

/** Sentinel for "no vertex". */
inline constexpr VertexId kInvalidVertex = UINT32_MAX;

/**
 * CSR graph with optional per-edge float weights.
 *
 * Construction goes through GraphBuilder (graph/builder.hh); the
 * invariants (sorted offsets, neighbor bounds, weight arity) are
 * validated there and assumed here.
 */
class Graph
{
  public:
    /** Build an empty graph. */
    Graph() = default;

    /**
     * Adopt prebuilt CSR arrays. @p offsets must have size V+1 with
     * offsets[0] == 0 and offsets[V] == neighbors.size(); @p weights
     * is either empty (unweighted) or the same size as @p neighbors.
     */
    Graph(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors,
          std::vector<float> weights = {});

    /** @return number of vertices. */
    VertexId
    numVertices() const
    {
        return offsets_.empty()
            ? 0 : static_cast<VertexId>(offsets_.size() - 1);
    }

    /** @return number of stored (directed) arcs. */
    EdgeId numEdges() const { return neighbors_.size(); }

    /** @return out-degree of @p v. */
    EdgeId
    degree(VertexId v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    /** @return first CSR index of @p v's adjacency list. */
    EdgeId edgeBegin(VertexId v) const { return offsets_[v]; }

    /** @return one-past-last CSR index of @p v's adjacency list. */
    EdgeId edgeEnd(VertexId v) const { return offsets_[v + 1]; }

    /** @return neighbor list of @p v as a read-only span. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {neighbors_.data() + offsets_[v],
                static_cast<std::size_t>(degree(v))};
    }

    /** @return destination vertex of CSR edge @p e. */
    VertexId edgeTarget(EdgeId e) const { return neighbors_[e]; }

    /** @return true when per-edge weights are stored. */
    bool hasWeights() const { return !weights_.empty(); }

    /** @return weight of CSR edge @p e (1.0 when unweighted). */
    float
    edgeWeight(EdgeId e) const
    {
        return weights_.empty() ? 1.0f : weights_[e];
    }

    /** @return weights of @p v's adjacency list (empty if unweighted). */
    std::span<const float>
    edgeWeights(VertexId v) const
    {
        if (weights_.empty())
            return {};
        return {weights_.data() + offsets_[v],
                static_cast<std::size_t>(degree(v))};
    }

    /** @return approximate resident size in bytes (CSR arrays only). */
    uint64_t footprintBytes() const;

    /** @return maximum out-degree over all vertices (0 for empty). */
    EdgeId maxDegree() const;

    /** @return average out-degree (0 for empty). */
    double avgDegree() const;

    /** Raw offset array (size V+1). */
    const std::vector<EdgeId> &offsets() const { return offsets_; }

    /** Raw neighbor array (size E). */
    const std::vector<VertexId> &rawNeighbors() const { return neighbors_; }

  private:
    std::vector<EdgeId> offsets_;
    std::vector<VertexId> neighbors_;
    std::vector<float> weights_;
};

} // namespace heteromap

#endif // HETEROMAP_GRAPH_GRAPH_HH
