/**
 * @file
 * Shared flat-frontier BFS machinery: swap-buffer frontiers over a
 * visited bitmap with an optional direction-optimizing (top-down /
 * bottom-up) switch and optional fan-out over a ThreadPool. Every
 * graph-measurement sweep (hop distances, diameter double sweeps,
 * component flood fills) runs on this substrate instead of growing
 * its own deque-based traversal.
 *
 * Determinism contract: a traversal's observable outputs (hop levels,
 * farthest vertex, reached count) are byte-identical for any thread
 * count. Work is split into fixed-size chunks whose partial results
 * are combined in chunk-index order, so the schedule can vary but the
 * reduction order cannot; hop levels themselves are unique per vertex
 * in a level-synchronous BFS, and the "farthest" vertex is defined as
 * the minimum-id member of the deepest level — an order-free min.
 */

#ifndef HETEROMAP_GRAPH_FRONTIER_HH
#define HETEROMAP_GRAPH_FRONTIER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hh"

namespace heteromap {

class ThreadPool;

/**
 * Fixed chunk geometry for every parallel sweep. The chunk size is a
 * multiple of 64 so a bitmap word never straddles two chunks (letting
 * bottom-up steps touch their word range without atomics), and it is
 * a constant — never derived from the thread count — because the
 * chunk decomposition defines the deterministic reduction order.
 */
inline constexpr std::size_t kFrontierChunk = 2048;

/** Minimum per-level work (vertices or edges) worth fanning out. */
inline constexpr std::size_t kParallelGrain = 16384;

/** Default direction-switch thresholds (Beamer-style alpha/beta):
 *  go bottom-up when the frontier's out-edges exceed E / alpha, back
 *  top-down when the frontier shrinks below V / beta. */
inline constexpr uint64_t kBottomUpEdgeDivisor = 14;
inline constexpr uint64_t kTopDownSizeDivisor = 24;

/**
 * Run fn(chunk_index, begin, end) over [0, count) in kFrontierChunk
 * slices — on @p pool when given, inline otherwise. The caller must
 * make chunks independent; combining any per-chunk partials in chunk
 * order is what keeps results thread-count-invariant.
 */
void forEachChunk(std::size_t count, ThreadPool *pool,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)> &fn);

/**
 * Reusable traversal buffers. prepare() sizes them for a vertex
 * count (zero-filling only newly grown storage); clearVisited()
 * resets the visited bitmap so the same scratch can serve many BFS
 * runs without reallocating. flatBfs() deliberately does NOT clear
 * the bitmap itself: component counting seeds successive traversals
 * into the same bitmap to skip already-flooded regions.
 */
struct FrontierScratch {
    std::vector<uint64_t> visited;  //!< one bit per vertex
    std::vector<uint64_t> curBits;  //!< current frontier (bottom-up)
    std::vector<uint64_t> nextBits; //!< next frontier (bottom-up)
    std::vector<VertexId> frontier; //!< current frontier, flat array
    std::vector<VertexId> next;     //!< next frontier, flat array
    /** Per-chunk discovery buffers for top-down steps. */
    std::vector<std::vector<VertexId>> chunkOut;

    /** Size buffers for @p num_vertices (keeps existing capacity). */
    void prepare(VertexId num_vertices);

    /** Zero the visited bitmap. */
    void clearVisited();

    /** @return true when @p v is marked visited. */
    bool
    isVisited(VertexId v) const
    {
        return (visited[v >> 6] >> (v & 63)) & 1u;
    }
};

/** Knobs for one flatBfs() run. */
struct BfsOptions {
    /**
     * Permit bottom-up levels. Only valid when the adjacency is
     * symmetric (u in N(v) iff v in N(u)): a bottom-up step asks
     * "does unvisited v have a parent in the frontier" by scanning
     * v's *out*-neighbors, which is its in-neighborhood only under
     * symmetry. Callers assert this (see hasSymmetricAdjacency).
     */
    bool allowBottomUp = false;

    /** Fan traversal levels over this pool (nullptr = serial). */
    ThreadPool *pool = nullptr;

    /**
     * Direction-switch thresholds. These (and bitmapFrontier) steer
     * only the traversal schedule, never the observable outputs: a
     * level-synchronous BFS assigns each vertex the same hop level in
     * either direction, and farthest/reached are order-free, so any
     * threshold choice is byte-identical to any other.
     */
    uint64_t bottomUpEdgeDivisor = kBottomUpEdgeDivisor;
    uint64_t topDownSizeDivisor = kTopDownSizeDivisor;

    /**
     * Keep wide frontiers as bitmaps between consecutive bottom-up
     * levels instead of materializing the flat vertex array each
     * level — the array is rebuilt only when the traversal narrows
     * back to top-down.
     */
    bool bitmapFrontier = false;
};

/**
 * Measured-property-driven traversal policy (after the density /
 * degree-distribution selection of arXiv:1708.01159): graph shape
 * picks the direction-switch thresholds and the frontier layout
 * before the first level runs.
 */
struct TraversalPlan {
    /** False when bottom-up can never pay (sparse, high-diameter
     *  graphs whose frontiers stay narrow) — which also lets callers
     *  skip the O(E log d) symmetry precheck bottom-up requires. */
    bool useBottomUp = true;
    uint64_t bottomUpEdgeDivisor = kBottomUpEdgeDivisor;
    uint64_t topDownSizeDivisor = kTopDownSizeDivisor;
    bool bitmapFrontier = false;
};

/**
 * Derive a TraversalPlan from measured graph properties. Density
 * (average degree) below ~2 marks road-network-like graphs: disable
 * bottom-up outright. High degree skew (stddev >= avg) or dense
 * graphs mark power-law inputs: switch bottom-up eagerly, hold it
 * longer, and keep the wide frontiers in bitmap form.
 */
TraversalPlan planTraversal(uint64_t num_vertices, uint64_t num_edges,
                            double avg_degree, double degree_stddev);

/** Outputs of one flatBfs() run. */
struct BfsResult {
    /**
     * Minimum-id vertex of the deepest BFS level (the source itself
     * when nothing else is reachable) — the double-sweep diameter
     * probe's next start, tracked inside the traversal instead of by
     * an extra O(V) scan over the hop array.
     */
    VertexId farthest = kInvalidVertex;
    uint32_t depth = 0;    //!< eccentricity of the source (hop levels)
    uint64_t reached = 0;  //!< vertices visited by this run
};

/**
 * Level-synchronous BFS from @p source over out-arcs. Marks every
 * reached vertex in scratch.visited (which must be prepared, and
 * cleared unless the caller wants to flood around prior runs); the
 * source must not already be visited. When @p hops is non-null it
 * must point at numVertices() entries pre-filled with UINT32_MAX;
 * reached vertices get their hop level. Direction optimization
 * switches to bottom-up on wide frontiers when options.allowBottomUp
 * is set and back to top-down when the frontier narrows.
 */
BfsResult flatBfs(const Graph &graph, VertexId source,
                  FrontierScratch &scratch, uint32_t *hops,
                  const BfsOptions &options = {});

} // namespace heteromap

#endif // HETEROMAP_GRAPH_FRONTIER_HH
