/**
 * @file
 * Table I dataset registry implementation. Proxy graphs are built on
 * first access and cached for the process lifetime; all benches and
 * tests therefore share one instance per dataset.
 */

#include "graph/datasets.hh"

#include <functional>
#include <mutex>
#include <optional>

#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "util/logging.hh"

namespace heteromap {

namespace {

/** Internal registry row: generator + cache slots. */
struct Entry {
    std::function<Graph()> make;
    std::optional<Graph> graph;
    std::optional<GraphStats> stats;
    std::once_flag once;
};

GraphStats
nominal(uint64_t v, uint64_t e, uint64_t max_deg, uint64_t dia)
{
    GraphStats s;
    s.numVertices = v;
    s.numEdges = e;
    s.maxDegree = max_deg;
    s.avgDegree = v ? static_cast<double>(e) / static_cast<double>(v) : 0.0;
    s.diameter = dia;
    return s;
}

constexpr std::size_t kNumDatasets = 9;

Entry &
entryAt(std::size_t index)
{
    // Proxy sizes are chosen so every workload finishes in well under a
    // second per run while preserving each family's structural regime
    // (diameter, degree skew, density). Seeds are fixed for determinism.
    static Entry entries[kNumDatasets] = {
        {[] { return generateRoadGrid(128, 96, 42); }, {}, {}, {}},
        {[] { return generateRmat(13, 14.0, 101, 0.57, 0.19, 0.19); },
         {}, {}, {}},
        {[] { return generateRmat(14, 18.0, 102, 0.57, 0.19, 0.19); },
         {}, {}, {}},
        {[] { return generateRmat(14, 32.0, 103, 0.65, 0.15, 0.15); },
         {}, {}, {}},
        {[] { return generatePreferentialAttachment(20000, 14, 104); },
         {}, {}, {}},
        {[] { return generateDenseEr(562, 0.9, 105); }, {}, {}, {}},
        {[] { return generateMesh(16384, 17, 106); }, {}, {}, {}},
        {[] { return generateRandomGeometric(40000, 0.008, 107); },
         {}, {}, {}},
        {[] { return generateRmat(14, 16.0, 108, 0.57, 0.19, 0.19); },
         {}, {}, {}},
    };
    HM_ASSERT(index < kNumDatasets, "dataset index out of range");
    return entries[index];
}

} // namespace

Dataset::Dataset(std::string name, std::string short_name,
                 std::string family, GraphStats nominal_stats,
                 std::size_t index)
    : name_(std::move(name)), shortName_(std::move(short_name)),
      family_(std::move(family)), nominal_(nominal_stats), index_(index)
{
}

const Graph &
Dataset::proxy() const
{
    Entry &entry = entryAt(index_);
    std::call_once(entry.once, [&entry] {
        entry.graph = entry.make();
        // Through the global memo cache: the per-entry once_flag
        // already makes this a one-shot per process, but routing it
        // through the cache lets any other caller measuring the same
        // proxy content (tests, benches, online paths) hit for free.
        entry.stats = globalStatsCache().measure(*entry.graph);
    });
    return *entry.graph;
}

const GraphStats &
Dataset::proxyStats() const
{
    proxy();
    return *entryAt(index_).stats;
}

const std::vector<Dataset> &
evaluationDatasets()
{
    static const std::vector<Dataset> datasets = {
        // Table I rows: name, abbreviation, family, nominal stats.
        {"USA-Cal", "CA", "road",
         nominal(1'900'000, 4'700'000, 12, 850), 0},
        {"Facebook", "FB", "social",
         nominal(2'900'000, 41'900'000, 90'000, 12), 1},
        {"LiveJournal", "LJ", "social",
         nominal(4'800'000, 85'700'000, 20'000, 16), 2},
        {"Twitter", "Twtr", "social",
         nominal(41'700'000, 1'470'000'000, 3'000'000, 5), 3},
        {"Friendster", "Frnd", "social",
         nominal(65'600'000, 1'810'000'000, 5'200, 32), 4},
        {"MouseRetina3", "CO", "connectome",
         nominal(562, 570'000, 1'027, 2), 5},
        {"Cage14", "CAGE", "mesh",
         nominal(1'500'000, 25'600'000, 80, 8), 6},
        {"rgg-n-24", "Rgg", "geometric",
         nominal(16'800'000, 387'000'000, 40, 2'622), 7},
        {"KronLarge", "Kron", "kronecker",
         nominal(134'000'000, 2'150'000'000, 16'000, 12), 8},
    };
    return datasets;
}

const Dataset &
datasetByShortName(const std::string &short_name)
{
    for (const auto &dataset : evaluationDatasets())
        if (dataset.shortName() == short_name)
            return dataset;
    HM_FATAL("unknown dataset abbreviation '", short_name, "'");
}

LiteratureMaxima
literatureMaxima()
{
    // Largest values across Table I: Kron vertices, Kron edges,
    // Twitter max degree, Rgg diameter.
    return {134e6, 2.15e9, 3e6, 2622.0};
}

} // namespace heteromap
