/**
 * @file
 * GraphChunker implementation.
 */

#include "graph/chunker.hh"

#include <unordered_map>

#include "graph/builder.hh"
#include "util/logging.hh"

namespace heteromap {

namespace {

/** Approximate CSR bytes for a vertex range with its out-edges. */
uint64_t
rangeBytes(uint64_t vertices, uint64_t edges)
{
    // offsets + neighbors + weights + halo remap table headroom.
    return vertices * (sizeof(EdgeId) + sizeof(VertexId)) +
           edges * (sizeof(VertexId) + sizeof(float) + sizeof(VertexId));
}

} // namespace

GraphChunker::GraphChunker(const Graph &graph, uint64_t budget_bytes)
    : graph_(graph), budgetBytes_(budget_bytes)
{
    HM_ASSERT(budget_bytes > 0, "chunk budget must be positive");
    boundaries_.push_back(0);
    uint64_t vertices = 0;
    uint64_t edges = 0;
    for (VertexId v = 0; v < graph_.numVertices(); ++v) {
        uint64_t v_edges = graph_.degree(v);
        if (rangeBytes(1, v_edges) > budgetBytes_) {
            HM_FATAL("vertex ", v, " with degree ", v_edges,
                     " cannot fit in a ", budgetBytes_, "-byte chunk");
        }
        if (vertices > 0 &&
            rangeBytes(vertices + 1, edges + v_edges) > budgetBytes_) {
            boundaries_.push_back(v);
            vertices = 0;
            edges = 0;
        }
        ++vertices;
        edges += v_edges;
    }
    boundaries_.push_back(graph_.numVertices());
}

GraphChunk
GraphChunker::chunk(std::size_t index) const
{
    HM_ASSERT(index + 1 < boundaries_.size(), "chunk index ", index,
              " out of range");
    const VertexId lo = boundaries_[index];
    const VertexId hi = boundaries_[index + 1];
    const VertexId range = hi - lo;

    GraphChunk result;
    result.firstVertex = lo;
    result.haloBegin = range;
    result.localToGlobal.reserve(range);
    for (VertexId v = lo; v < hi; ++v)
        result.localToGlobal.push_back(v);

    // Discover halo vertices (targets outside [lo, hi)).
    std::unordered_map<VertexId, VertexId> halo;
    for (VertexId v = lo; v < hi; ++v) {
        for (VertexId u : graph_.neighbors(v)) {
            if (u < lo || u >= hi) {
                auto [it, inserted] = halo.try_emplace(
                    u, static_cast<VertexId>(range + halo.size()));
                if (inserted)
                    result.localToGlobal.push_back(u);
                (void)it;
            }
        }
    }

    GraphBuilder builder(
        static_cast<VertexId>(result.localToGlobal.size()));
    for (VertexId v = lo; v < hi; ++v) {
        auto nbrs = graph_.neighbors(v);
        auto wts = graph_.edgeWeights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            VertexId u = nbrs[i];
            VertexId local_u =
                (u >= lo && u < hi) ? (u - lo) : halo.at(u);
            float w = wts.empty() ? 1.0f : wts[i];
            builder.addEdge(v - lo, local_u, w);
        }
    }
    result.subgraph = builder.build();
    return result;
}

GraphChunker::CompressedChunk
GraphChunker::compressedChunk(std::size_t index) const
{
    GraphChunk raw = chunk(index);
    CompressedChunk out;
    out.subgraph = CompressedCsr::fromGraph(raw.subgraph);
    out.firstVertex = raw.firstVertex;
    out.haloBegin = raw.haloBegin;
    out.localToGlobal = std::move(raw.localToGlobal);
    return out;
}

} // namespace heteromap
