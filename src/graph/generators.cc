/**
 * @file
 * Synthetic graph generator implementations. Every generator is
 * deterministic in its seed and finalizes through GraphBuilder so the
 * resulting CSR invariants are uniform.
 */

#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/builder.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {

Graph
generateUniformRandom(VertexId num_vertices, EdgeId num_edges,
                      uint64_t seed)
{
    HM_ASSERT(num_vertices > 1, "uniform random graph needs >= 2 vertices");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    for (EdgeId i = 0; i < num_edges; ++i) {
        auto src = static_cast<VertexId>(rng.nextBounded(num_vertices));
        auto dst = static_cast<VertexId>(rng.nextBounded(num_vertices));
        builder.addEdge(src, dst);
    }
    return builder.symmetrize().dedup().dropSelfLoops()
        .randomWeights(seed ^ 0xabcdefULL).build();
}

Graph
generateRmat(unsigned scale, double edge_factor, uint64_t seed,
             double a, double b, double c)
{
    HM_ASSERT(scale >= 2 && scale <= 30, "R-MAT scale out of range");
    double d = 1.0 - a - b - c;
    HM_ASSERT(d >= 0.0, "R-MAT probabilities exceed 1");

    const VertexId n = VertexId{1} << scale;
    const auto target =
        static_cast<EdgeId>(edge_factor * static_cast<double>(n));
    Rng rng(seed);
    GraphBuilder builder(n);

    for (EdgeId i = 0; i < target; ++i) {
        VertexId src = 0;
        VertexId dst = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            // Perturb quadrant probabilities slightly per level, the
            // standard "noisy R-MAT" trick that avoids exact
            // self-similarity artifacts.
            double na = a * rng.nextDouble(0.95, 1.05);
            double nb = b * rng.nextDouble(0.95, 1.05);
            double nc = c * rng.nextDouble(0.95, 1.05);
            double nd = d * rng.nextDouble(0.95, 1.05);
            double total = na + nb + nc + nd;
            double draw = rng.nextDouble() * total;
            src <<= 1;
            dst <<= 1;
            if (draw < na) {
                // top-left quadrant: no bits set
            } else if (draw < na + nb) {
                dst |= 1;
            } else if (draw < na + nb + nc) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        builder.addEdge(src, dst);
    }
    return builder.symmetrize().dedup().dropSelfLoops()
        .randomWeights(seed ^ 0x5eedULL).build();
}

Graph
generateRoadGrid(VertexId width, VertexId height, uint64_t seed,
                 double rewire)
{
    HM_ASSERT(width >= 2 && height >= 2, "grid must be at least 2x2");
    const VertexId n = width * height;
    Rng rng(seed);
    GraphBuilder builder(n);

    auto id = [width](VertexId x, VertexId y) { return y * width + x; };

    for (VertexId y = 0; y < height; ++y) {
        for (VertexId x = 0; x < width; ++x) {
            if (x + 1 < width)
                builder.addEdge(id(x, y), id(x + 1, y));
            if (y + 1 < height)
                builder.addEdge(id(x, y), id(x, y + 1));
        }
    }

    // Local shortcuts: short diagonal hops emulating highway ramps.
    auto shortcuts = static_cast<EdgeId>(
        rewire * static_cast<double>(n));
    for (EdgeId i = 0; i < shortcuts; ++i) {
        auto x = static_cast<VertexId>(rng.nextBounded(width - 1));
        auto y = static_cast<VertexId>(rng.nextBounded(height - 1));
        builder.addEdge(id(x, y), id(x + 1, y + 1));
    }

    return builder.symmetrize().dedup().dropSelfLoops()
        .randomWeights(seed ^ 0x60adULL, 1.0f, 16.0f).build();
}

Graph
generateRandomGeometric(VertexId num_vertices, double radius,
                        uint64_t seed)
{
    HM_ASSERT(num_vertices > 1, "RGG needs >= 2 vertices");
    HM_ASSERT(radius > 0.0 && radius < 1.0, "RGG radius must be in (0,1)");
    Rng rng(seed);

    struct Point { double x, y; };
    std::vector<Point> pts(num_vertices);
    for (auto &p : pts)
        p = {rng.nextDouble(), rng.nextDouble()};

    // Spatial hash on a radius-sized cell grid: only neighboring cells
    // can contain edges, keeping generation near-linear.
    const auto cells = std::max<VertexId>(
        1, static_cast<VertexId>(1.0 / radius));
    std::vector<std::vector<VertexId>> grid(
        static_cast<std::size_t>(cells) * cells);
    auto cell_of = [&](const Point &p) {
        auto cx = std::min<VertexId>(
            cells - 1, static_cast<VertexId>(p.x * cells));
        auto cy = std::min<VertexId>(
            cells - 1, static_cast<VertexId>(p.y * cells));
        return static_cast<std::size_t>(cy) * cells + cx;
    };
    for (VertexId v = 0; v < num_vertices; ++v)
        grid[cell_of(pts[v])].push_back(v);

    GraphBuilder builder(num_vertices);
    const double r2 = radius * radius;
    for (VertexId v = 0; v < num_vertices; ++v) {
        auto cx = std::min<VertexId>(
            cells - 1, static_cast<VertexId>(pts[v].x * cells));
        auto cy = std::min<VertexId>(
            cells - 1, static_cast<VertexId>(pts[v].y * cells));
        for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
                int nx = static_cast<int>(cx) + dx;
                int ny = static_cast<int>(cy) + dy;
                if (nx < 0 || ny < 0 || nx >= static_cast<int>(cells) ||
                    ny >= static_cast<int>(cells)) {
                    continue;
                }
                for (VertexId u :
                     grid[static_cast<std::size_t>(ny) * cells + nx]) {
                    if (u <= v)
                        continue;
                    double ddx = pts[v].x - pts[u].x;
                    double ddy = pts[v].y - pts[u].y;
                    if (ddx * ddx + ddy * ddy <= r2)
                        builder.addEdge(v, u);
                }
            }
        }
    }
    return builder.symmetrize().dedup()
        .randomWeights(seed ^ 0x9e0ULL, 1.0f, 8.0f).build();
}

Graph
generateDenseEr(VertexId num_vertices, double p, uint64_t seed)
{
    HM_ASSERT(num_vertices > 1, "dense ER needs >= 2 vertices");
    HM_ASSERT(p > 0.0 && p <= 1.0, "dense ER probability out of range");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    for (VertexId u = 0; u < num_vertices; ++u)
        for (VertexId v = u + 1; v < num_vertices; ++v)
            if (rng.nextBool(p))
                builder.addEdge(u, v);
    return builder.symmetrize()
        .randomWeights(seed ^ 0xde5eULL).build();
}

Graph
generatePreferentialAttachment(VertexId num_vertices, unsigned attach,
                               uint64_t seed)
{
    HM_ASSERT(num_vertices > attach + 1,
              "preferential attachment needs more vertices than links");
    HM_ASSERT(attach >= 1, "attach count must be >= 1");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);

    // Endpoint pool: each arc contributes both endpoints, so sampling
    // uniformly from the pool is degree-proportional sampling.
    std::vector<VertexId> pool;
    pool.reserve(static_cast<std::size_t>(num_vertices) * attach * 2);

    // Seed clique over the first attach+1 vertices.
    for (VertexId u = 0; u <= attach; ++u) {
        for (VertexId v = u + 1; v <= attach; ++v) {
            builder.addEdge(u, v);
            pool.push_back(u);
            pool.push_back(v);
        }
    }

    for (VertexId v = attach + 1; v < num_vertices; ++v) {
        for (unsigned k = 0; k < attach; ++k) {
            VertexId target = pool[rng.nextBounded(pool.size())];
            builder.addEdge(v, target);
            pool.push_back(v);
            pool.push_back(target);
        }
    }
    return builder.symmetrize().dedup().dropSelfLoops()
        .randomWeights(seed ^ 0xba0ULL).build();
}

Graph
generateMesh(VertexId num_vertices, unsigned deg, uint64_t seed)
{
    HM_ASSERT(num_vertices > deg + 1, "mesh needs more vertices than degree");
    HM_ASSERT(deg >= 2, "mesh degree must be >= 2");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);

    // Ring lattice of degree deg-1 plus one random shortcut per vertex
    // (Watts-Strogatz-like) to pull the diameter down.
    unsigned half = std::max(1u, (deg - 1) / 2);
    for (VertexId v = 0; v < num_vertices; ++v) {
        for (unsigned k = 1; k <= half; ++k)
            builder.addEdge(v, (v + k) % num_vertices);
        auto shortcut =
            static_cast<VertexId>(rng.nextBounded(num_vertices));
        if (shortcut != v)
            builder.addEdge(v, shortcut);
    }
    return builder.symmetrize().dedup().dropSelfLoops()
        .randomWeights(seed ^ 0x3e5ULL).build();
}

Graph
generatePath(VertexId num_vertices)
{
    HM_ASSERT(num_vertices >= 1, "path needs >= 1 vertex");
    GraphBuilder builder(num_vertices);
    for (VertexId v = 0; v + 1 < num_vertices; ++v)
        builder.addEdge(v, v + 1);
    return builder.symmetrize().build();
}

Graph
generateCycle(VertexId num_vertices)
{
    HM_ASSERT(num_vertices >= 3, "cycle needs >= 3 vertices");
    GraphBuilder builder(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v)
        builder.addEdge(v, (v + 1) % num_vertices);
    return builder.symmetrize().build();
}

Graph
generateStar(VertexId num_vertices)
{
    HM_ASSERT(num_vertices >= 2, "star needs >= 2 vertices");
    GraphBuilder builder(num_vertices);
    for (VertexId v = 1; v < num_vertices; ++v)
        builder.addEdge(0, v);
    return builder.symmetrize().build();
}

Graph
generateComplete(VertexId num_vertices)
{
    HM_ASSERT(num_vertices >= 2, "complete graph needs >= 2 vertices");
    GraphBuilder builder(num_vertices);
    for (VertexId u = 0; u < num_vertices; ++u)
        for (VertexId v = u + 1; v < num_vertices; ++v)
            builder.addEdge(u, v);
    return builder.symmetrize().build();
}

} // namespace heteromap
