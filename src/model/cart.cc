/**
 * @file
 * CART implementation: greedy variance-reduction splits on the 0.1
 * feature grid, mean-vector leaves.
 */

#include "model/cart.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {

struct CartTree::Node {
    // Internal node.
    std::size_t feature = 0;
    double threshold = 0.0;
    std::unique_ptr<Node> left;   //!< feature value <  threshold
    std::unique_ptr<Node> right;  //!< feature value >= threshold

    // Leaf payload.
    NormalizedMVector mean;

    bool isLeaf() const { return left == nullptr; }

    std::size_t
    count() const
    {
        if (isLeaf())
            return 1;
        return 1 + left->count() + right->count();
    }

    std::size_t
    height() const
    {
        if (isLeaf())
            return 1;
        return 1 + std::max(left->height(), right->height());
    }
};

namespace {

/** Mean target vector over an index subset. */
NormalizedMVector
meanOf(const TrainingSet &data, const std::vector<std::size_t> &idx)
{
    NormalizedMVector out;
    if (idx.empty())
        return out;
    for (std::size_t i : idx)
        for (std::size_t m = 0; m < kNumOutputs; ++m)
            out.m[m] += data[i].y.m[m];
    for (double &v : out.m)
        v /= static_cast<double>(idx.size());
    return out;
}

/** Total squared error of a subset around its mean. */
double
sse(const TrainingSet &data, const std::vector<std::size_t> &idx)
{
    NormalizedMVector mu = meanOf(data, idx);
    double total = 0.0;
    for (std::size_t i : idx) {
        for (std::size_t m = 0; m < kNumOutputs; ++m) {
            double d = data[i].y.m[m] - mu.m[m];
            total += d * d;
        }
    }
    return total;
}

} // namespace

CartTree::CartTree(CartOptions options) : options_(options)
{
}

CartTree::~CartTree() = default;
CartTree::CartTree(CartTree &&) noexcept = default;
CartTree &CartTree::operator=(CartTree &&) noexcept = default;

void
CartTree::train(const TrainingSet &data)
{
    HM_ASSERT(!data.empty(), "cannot train on an empty corpus");

    std::vector<std::size_t> all(data.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;

    // Recursive greedy builder.
    struct Builder {
        const TrainingSet &data;
        const CartOptions &options;

        std::unique_ptr<Node>
        build(std::vector<std::size_t> idx, unsigned depth)
        {
            auto node = std::make_unique<Node>();
            node->mean = meanOf(data, idx);
            if (depth >= options.maxDepth ||
                idx.size() < 2 * options.minSamplesLeaf) {
                return node;
            }

            const double parent_sse = sse(data, idx);
            double best_gain = 1e-9;
            std::size_t best_feature = 0;
            double best_threshold = 0.0;

            for (std::size_t feat = 0; feat < kNumFeatures; ++feat) {
                for (unsigned t = 1;
                     t <= options.thresholdsPerFeature; ++t) {
                    double threshold =
                        static_cast<double>(t) /
                        (options.thresholdsPerFeature + 1.0);
                    std::vector<std::size_t> lo, hi;
                    for (std::size_t i : idx) {
                        if (data[i].x.asArray()[feat] < threshold)
                            lo.push_back(i);
                        else
                            hi.push_back(i);
                    }
                    if (lo.size() < options.minSamplesLeaf ||
                        hi.size() < options.minSamplesLeaf) {
                        continue;
                    }
                    double gain =
                        parent_sse - sse(data, lo) - sse(data, hi);
                    if (gain > best_gain) {
                        best_gain = gain;
                        best_feature = feat;
                        best_threshold = threshold;
                    }
                }
            }
            if (best_gain <= 1e-9)
                return node; // no useful split

            std::vector<std::size_t> lo, hi;
            for (std::size_t i : idx) {
                if (data[i].x.asArray()[best_feature] <
                    best_threshold) {
                    lo.push_back(i);
                } else {
                    hi.push_back(i);
                }
            }
            node->feature = best_feature;
            node->threshold = best_threshold;
            node->left = build(std::move(lo), depth + 1);
            node->right = build(std::move(hi), depth + 1);
            return node;
        }
    };

    Builder builder{data, options_};
    root_ = builder.build(std::move(all), 0);
}

NormalizedMVector
CartTree::predict(const FeatureVector &f) const
{
    HM_ASSERT(root_ != nullptr, "CartTree::predict before train");
    auto flat = f.asArray();
    const Node *node = root_.get();
    while (!node->isLeaf()) {
        node = flat[node->feature] < node->threshold
                   ? node->left.get()
                   : node->right.get();
    }
    return node->mean;
}

std::size_t
CartTree::nodeCount() const
{
    return root_ ? root_->count() : 0;
}

std::size_t
CartTree::depth() const
{
    return root_ ? root_->height() : 0;
}

CartForest::CartForest(unsigned trees, CartOptions options, uint64_t seed)
    : numTrees_(std::max(1u, trees)), options_(options), seed_(seed)
{
}

std::string
CartForest::name() const
{
    std::ostringstream oss;
    oss << "Learned Forest (" << numTrees_ << " trees)";
    return oss.str();
}

void
CartForest::train(const TrainingSet &data)
{
    HM_ASSERT(!data.empty(), "cannot train on an empty corpus");
    trees_.clear();
    Rng rng(seed_);
    for (unsigned t = 0; t < numTrees_; ++t) {
        // Bootstrap sample of the corpus.
        TrainingSet boot;
        boot.reserve(data.size());
        for (std::size_t i = 0; i < data.size(); ++i)
            boot.push_back(data[rng.nextBounded(data.size())]);
        CartTree tree(options_);
        tree.train(boot);
        trees_.push_back(std::move(tree));
    }
}

NormalizedMVector
CartForest::predict(const FeatureVector &f) const
{
    HM_ASSERT(!trees_.empty(), "CartForest::predict before train");
    NormalizedMVector out;
    for (const auto &tree : trees_) {
        auto y = tree.predict(f);
        for (std::size_t m = 0; m < kNumOutputs; ++m)
            out.m[m] += y.m[m];
    }
    for (double &v : out.m)
        v /= static_cast<double>(trees_.size());
    return out;
}

} // namespace heteromap
