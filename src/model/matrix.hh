/**
 * @file
 * Minimal dense linear algebra for the learned predictors: row-major
 * double matrices with the operations the regression solvers and the
 * MLP need (products, transpose, ridge-regularized Cholesky solve).
 */

#ifndef HETEROMAP_MODEL_MATRIX_HH
#define HETEROMAP_MODEL_MATRIX_HH

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace heteromap {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** @p rows x @p cols zero matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Construct from nested initializer data (rows of equal width). */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** Identity of size @p n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    /** Raw storage (row-major). */
    std::vector<double> &data() { return data_; }
    const std::vector<double> &data() const { return data_; }

    Matrix transpose() const;
    Matrix multiply(const Matrix &other) const;

    /** this * vector (vector length == cols). */
    std::vector<double> apply(const std::vector<double> &x) const;

    /**
     * Allocation-free this * x into @p out (out size == rows). The
     * per-row accumulation order is the same ascending-column order
     * apply() uses, so results are byte-identical to apply().
     */
    void applyInto(const double *x, double *out) const;

    /**
     * Batched forward for the MLP hot path: given @p n input columns
     * packed transposed in @p in_t (cols x n, sample-major in the
     * inner dimension), writes this * columns into @p out_t (rows x
     * n, same packing). Each (row, sample) dot product accumulates
     * over the columns in ascending order — exactly apply()'s order —
     * so every sample's output is byte-identical to a one-at-a-time
     * apply(); the speedup comes from the inner sample loop, whose n
     * independent accumulators vectorize (no ffast-math needed)
     * where the scalar dot product is a latency-bound serial chain.
     */
    void forwardBatch(const double *in_t, std::size_t n,
                      double *out_t) const;

    /** Element-wise addition; shapes must match. */
    Matrix add(const Matrix &other) const;

    /** Scale all elements. */
    Matrix scaled(double factor) const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Serialize @p m as "rows cols v00 v01 ..." text. */
void saveMatrix(std::ostream &os, const Matrix &m);

/** Parse the saveMatrix format; fatal on malformed input. */
Matrix loadMatrix(std::istream &is);

/**
 * Solve (A + ridge * I) X = B for X with A symmetric positive
 * semi-definite (e.g. A = Xt*X), via Cholesky decomposition. B may
 * have multiple right-hand-side columns. Fatal if the regularized
 * matrix is not positive definite.
 */
Matrix choleskySolve(const Matrix &a, const Matrix &b, double ridge = 0.0);

} // namespace heteromap

#endif // HETEROMAP_MODEL_MATRIX_HH
