/**
 * @file
 * TrainingSet helpers: deterministic shuffling, train/validation
 * splits, and conversion to design matrices for the solvers.
 */

#ifndef HETEROMAP_MODEL_DATASET_HH
#define HETEROMAP_MODEL_DATASET_HH

#include <utility>

#include "model/matrix.hh"
#include "model/predictor.hh"

namespace heteromap {

/** Deterministically shuffle @p data in place. */
void shuffleTrainingSet(TrainingSet &data, uint64_t seed);

/**
 * Split into (train, validation) with @p train_fraction of samples in
 * the first part. The input order is preserved; shuffle first if the
 * corpus is ordered.
 */
std::pair<TrainingSet, TrainingSet>
splitTrainingSet(const TrainingSet &data, double train_fraction);

/** Stack features into an N x 17 matrix. */
Matrix featureMatrix(const TrainingSet &data);

/** Stack targets into an N x 20 matrix. */
Matrix targetMatrix(const TrainingSet &data);

/** Mean squared prediction error of @p predictor over @p data. */
double meanSquaredError(const Predictor &predictor,
                        const TrainingSet &data);

} // namespace heteromap

#endif // HETEROMAP_MODEL_DATASET_HH
