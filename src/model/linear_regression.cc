/**
 * @file
 * Linear regression implementation.
 */

#include "model/linear_regression.hh"

#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace heteromap {

void
LinearRegression::train(const TrainingSet &data)
{
    HM_ASSERT(!data.empty(), "cannot train on an empty corpus");

    // Design matrix with a trailing bias column.
    Matrix x(data.size(), kNumFeatures + 1);
    for (std::size_t r = 0; r < data.size(); ++r) {
        auto flat = data[r].x.asArray();
        for (std::size_t c = 0; c < kNumFeatures; ++c)
            x.at(r, c) = flat[c];
        x.at(r, kNumFeatures) = 1.0;
    }

    Matrix y(data.size(), kNumOutputs);
    for (std::size_t r = 0; r < data.size(); ++r)
        for (std::size_t c = 0; c < kNumOutputs; ++c)
            y.at(r, c) = data[r].y.m[c];

    Matrix xt = x.transpose();
    weights_ = choleskySolve(xt.multiply(x), xt.multiply(y), ridge_);
}

NormalizedMVector
LinearRegression::predict(const FeatureVector &f) const
{
    HM_ASSERT(weights_.rows() == kNumFeatures + 1,
              "LinearRegression::predict before train");
    std::vector<double> input = f.asVector();
    input.push_back(1.0);

    NormalizedMVector out;
    for (std::size_t k = 0; k < kNumOutputs; ++k) {
        double sum = 0.0;
        for (std::size_t c = 0; c < input.size(); ++c)
            sum += weights_.at(c, k) * input[c];
        out.m[k] = sum;
    }
    out.clamp01();
    return out;
}

void
LinearRegression::save(std::ostream &os) const
{
    HM_ASSERT(weights_.rows() == kNumFeatures + 1,
              "LinearRegression::save before train");
    os << "linear-regression v1 " << ridge_ << "\n";
    saveMatrix(os, weights_);
}

LinearRegression
LinearRegression::load(std::istream &is)
{
    std::string tag;
    std::string version;
    double ridge = 0.0;
    is >> tag >> version >> ridge;
    if (is.fail() || tag != "linear-regression" || version != "v1")
        HM_FATAL("LinearRegression::load: bad header");
    LinearRegression model(ridge);
    model.weights_ = loadMatrix(is);
    if (model.weights_.rows() != kNumFeatures + 1 ||
        model.weights_.cols() != kNumOutputs) {
        HM_FATAL("LinearRegression::load: unexpected weight shape");
    }
    return model;
}

} // namespace heteromap
