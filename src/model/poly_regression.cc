/**
 * @file
 * Polynomial regression implementation.
 */

#include "model/poly_regression.hh"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace heteromap {

PolyRegression::PolyRegression(unsigned order, double ridge)
    : order_(order), ridge_(ridge)
{
    HM_ASSERT(order_ >= 1, "polynomial order must be >= 1");
}

std::string
PolyRegression::name() const
{
    std::ostringstream oss;
    oss << "Multi Regression (order " << order_ << ")";
    return oss.str();
}

std::size_t
PolyRegression::expandedSize() const
{
    // bias + per-feature powers + pairwise products.
    return 1 + kNumFeatures * order_ +
           kNumFeatures * (kNumFeatures - 1) / 2;
}

std::vector<double>
PolyRegression::expand(const FeatureVector &f) const
{
    auto flat = f.asArray();
    std::vector<double> out;
    out.reserve(expandedSize());
    out.push_back(1.0);
    for (double x : flat) {
        double power = x;
        for (unsigned p = 0; p < order_; ++p) {
            out.push_back(power);
            power *= x;
        }
    }
    for (std::size_t i = 0; i < flat.size(); ++i)
        for (std::size_t j = i + 1; j < flat.size(); ++j)
            out.push_back(flat[i] * flat[j]);
    return out;
}

void
PolyRegression::train(const TrainingSet &data)
{
    HM_ASSERT(!data.empty(), "cannot train on an empty corpus");
    const std::size_t dim = expandedSize();

    Matrix x(data.size(), dim);
    for (std::size_t r = 0; r < data.size(); ++r) {
        auto row = expand(data[r].x);
        for (std::size_t c = 0; c < dim; ++c)
            x.at(r, c) = row[c];
    }

    Matrix y(data.size(), kNumOutputs);
    for (std::size_t r = 0; r < data.size(); ++r)
        for (std::size_t c = 0; c < kNumOutputs; ++c)
            y.at(r, c) = data[r].y.m[c];

    Matrix xt = x.transpose();
    weights_ = choleskySolve(xt.multiply(x), xt.multiply(y), ridge_);
}

NormalizedMVector
PolyRegression::predict(const FeatureVector &f) const
{
    HM_ASSERT(weights_.rows() == expandedSize(),
              "PolyRegression::predict before train");
    auto input = expand(f);

    NormalizedMVector out;
    for (std::size_t k = 0; k < kNumOutputs; ++k) {
        double sum = 0.0;
        for (std::size_t c = 0; c < input.size(); ++c)
            sum += weights_.at(c, k) * input[c];
        out.m[k] = sum;
    }
    out.clamp01();
    return out;
}

void
PolyRegression::save(std::ostream &os) const
{
    HM_ASSERT(weights_.rows() == expandedSize(),
              "PolyRegression::save before train");
    os << "poly-regression v1 " << order_ << " " << ridge_ << "\n";
    saveMatrix(os, weights_);
}

PolyRegression
PolyRegression::load(std::istream &is)
{
    std::string tag;
    std::string version;
    unsigned order = 0;
    double ridge = 0.0;
    is >> tag >> version >> order >> ridge;
    if (is.fail() || tag != "poly-regression" || version != "v1")
        HM_FATAL("PolyRegression::load: bad header");
    PolyRegression model(order, ridge);
    model.weights_ = loadMatrix(is);
    if (model.weights_.rows() != model.expandedSize() ||
        model.weights_.cols() != kNumOutputs) {
        HM_FATAL("PolyRegression::load: unexpected weight shape");
    }
    return model;
}

} // namespace heteromap
