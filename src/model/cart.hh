/**
 * @file
 * Learned decision trees: a multi-output CART regression tree and a
 * bagged forest of them. The paper hand-builds its decision tree
 * (Sec. IV) and leaves automated tree construction implicit in "the
 * proposed analytical model is further automated using machine
 * learning"; these learners realize that path — trees fitted to the
 * same (B, I) -> M corpus the other predictors train on, keeping the
 * decision-tree family's readability while removing the manual
 * threshold engineering.
 */

#ifndef HETEROMAP_MODEL_CART_HH
#define HETEROMAP_MODEL_CART_HH

#include <memory>

#include "model/predictor.hh"

namespace heteromap {

/** CART hyperparameters. */
struct CartOptions {
    unsigned maxDepth = 10;
    unsigned minSamplesLeaf = 4;
    /** Candidate thresholds per feature (0.1 grid -> 9 is exact). */
    unsigned thresholdsPerFeature = 9;
};

/** Multi-output CART regression tree. */
class CartTree : public Predictor
{
  public:
    explicit CartTree(CartOptions options = {});
    ~CartTree() override;
    CartTree(CartTree &&) noexcept;
    CartTree &operator=(CartTree &&) noexcept;

    std::string name() const override { return "Learned Tree"; }
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

    /** Number of decision nodes (exposed for tests/introspection). */
    std::size_t nodeCount() const;

    /** Depth of the fitted tree. */
    std::size_t depth() const;

  private:
    struct Node;
    CartOptions options_;
    std::unique_ptr<Node> root_;

    friend class CartForest;
};

/** Bagged ensemble of CART trees. */
class CartForest : public Predictor
{
  public:
    /**
     * @param trees   Ensemble size.
     * @param options Per-tree hyperparameters.
     * @param seed    Determinizes the bootstrap samples.
     */
    explicit CartForest(unsigned trees = 16, CartOptions options = {},
                        uint64_t seed = 17);

    std::string name() const override;
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

  private:
    unsigned numTrees_;
    CartOptions options_;
    uint64_t seed_;
    std::vector<CartTree> trees_;
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_CART_HH
