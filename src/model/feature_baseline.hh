/**
 * @file
 * Per-feature-dimension distribution baseline captured at training
 * time: one deterministic QuantileSketch per HeteroMap feature (13
 * B-vars + 4 I-vars), built from the training corpus and serialized
 * inside the model envelope (version v3, core/heteromap.cc) so a
 * deployed model carries the distribution it was trained on. The
 * serving drift monitor compares live traffic windows against this
 * baseline to score feature drift (PSI/KS) per dimension.
 */

#ifndef HETEROMAP_MODEL_FEATURE_BASELINE_HH
#define HETEROMAP_MODEL_FEATURE_BASELINE_HH

#include <array>
#include <iosfwd>
#include <string>

#include "features/feature_vector.hh"
#include "model/predictor.hh"
#include "util/sketch.hh"

namespace heteromap {

/** Sketches over [0,1] for every feature dimension. */
struct FeatureBaseline {
    static constexpr std::size_t kDims = kNumFeatures;

    std::array<telemetry::QuantileSketch, kDims> dims;
    uint64_t samples = 0;

    /** Count one feature vector into every dimension sketch. */
    void add(const FeatureVector &features);

    /** Fold @p other in (commutative; see QuantileSketch::merge). */
    void merge(const FeatureBaseline &other);

    void clear();

    /**
     * Deterministic text serialization (byte-identical for the same
     * multiset of add() calls regardless of order/threading).
     */
    void save(std::ostream &os) const;
    std::string toString() const;

    /** Parse save() output; false (untouched @p out) on error. */
    static bool load(std::istream &is, FeatureBaseline *out);

    bool operator==(const FeatureBaseline &other) const;
    bool operator!=(const FeatureBaseline &other) const
    {
        return !(*this == other);
    }
};

/** Baseline over every sample's features in @p corpus. */
FeatureBaseline buildFeatureBaseline(const TrainingSet &corpus);

} // namespace heteromap

#endif // HETEROMAP_MODEL_FEATURE_BASELINE_HH
