/**
 * @file
 * The manually constructed decision-tree heuristic of Section IV: a
 * 3-layer inter-accelerator tree selecting M1 from (B, I) thresholds
 * (0.5 mid-points by default), followed by the paper's linear
 * M-equations for the intra-accelerator choices (M2-M20). Analytical:
 * train() is a no-op.
 */

#ifndef HETEROMAP_MODEL_DECISION_TREE_HH
#define HETEROMAP_MODEL_DECISION_TREE_HH

#include <array>
#include <cstdint>
#include <iosfwd>

#include "model/predictor.hh"

namespace heteromap {

/** Section IV analytical decision-tree + linear-equation model. */
class DecisionTreeHeuristic : public Predictor
{
  public:
    /** @param threshold Decision threshold (paper default 0.5). */
    explicit DecisionTreeHeuristic(double threshold = 0.5)
        : threshold_(threshold)
    {
        buildFlatTree();
    }

    std::string name() const override { return "Decision Tree"; }
    void train(const TrainingSet &) override {}
    NormalizedMVector predict(const FeatureVector &f) const override;

    /**
     * Batched prediction via the flattened tree: every sample runs
     * the predicated node-array descent (predictFlat) instead of the
     * nested-if walk, so the hot loop has no data-dependent branches
     * to mispredict. Results are byte-identical to predict().
     */
    void predictBatch(std::span<const FeatureVector> features,
                      std::span<NormalizedMVector> out) const override;
    using Predictor::predictBatch;

    /** The inter-accelerator (M1) tree, exposed for tests/Fig. 7. */
    AcceleratorKind chooseAccelerator(const FeatureVector &f) const;

    /**
     * chooseAccelerator() evaluated on the flattened node array — a
     * fixed-trip-count descent where every step is a conditional
     * select, not a branch. Exposed for the equivalence tests and the
     * flat-vs-pointer benchmark; must agree with chooseAccelerator()
     * on every input.
     */
    AcceleratorKind chooseAcceleratorFlat(const FeatureVector &f) const;

    /**
     * predict() evaluated through the flat tree plus arithmetic-
     * select M-equations (no ternaries on data-dependent predicates).
     * Byte-identical to predict() by construction: the selects
     * produce the exact constants the branches produced.
     */
    NormalizedMVector predictFlat(const FeatureVector &f) const;

    /**
     * The provenance the flight recorder stamps into audit records:
     * the 12 node-predicate bits (nodes_ order) plus the leaf the
     * precompiled table maps them to. Together they replay the exact
     * root-to-leaf walk a prediction took.
     */
    struct DecisionPath {
        uint32_t predicateMask = 0;
        uint8_t leaf = 0; //!< kLeafGpu (10) or kLeafMulticore (11)
    };
    DecisionPath decisionPath(const FeatureVector &f) const;

    /** Persist the (only) parameter — the decision threshold. */
    void save(std::ostream &os) const;

    /** Restore a heuristic from the save() format. */
    static DecisionTreeHeuristic load(std::istream &is);

  private:
    double threshold_;

    /**
     * One predicated tree node: descend to @c hi when
     * f[feat] > thr, else to @c lo. Leaves are self-looping nodes
     * (hi == lo == self), so the fixed-trip descent needs no leaf
     * latch — extra iterations just spin in place.
     */
    struct FlatNode {
        double thr;
        int16_t feat;
        int16_t hi;
        int16_t lo;
    };
    static constexpr int16_t kLeafGpu = 10;
    static constexpr int16_t kLeafMulticore = 11;
    static constexpr std::size_t kFlatNodes = 12;
    /** Longest root-to-leaf path (fixed descent trip count). The
     *  nested-if OR/AND ladders collapse into single nodes over
     *  synthetic max/min features (exact: max(a,b) > t iff
     *  a > t || b > t), which is what keeps the depth this short. */
    static constexpr int kFlatDepth = 6;
    /** Tree inputs: the 17 raw features + 5 synthetic ones — the
     *  mixed-profile score difference (17), the phase-dominance max
     *  over B1-B3 (18), max(B8, B6) (19), min(B10, B12) (20), and
     *  the FP-with-negligible-local-data flag (21). */
    static constexpr std::size_t kFlatFeatures = kNumFeatures + 5;

    std::array<FlatNode, kFlatNodes> nodes_{};

    /**
     * The 12 node-predicate bits for @p f, in nodes_ order, computed
     * straight from the feature struct (no staging array). Must
     * mirror buildFlatTree()'s node predicates exactly; the
     * BatchInference equivalence suite pins the correspondence.
     */
    uint32_t predicateMask(const FeatureVector &f) const;

    /** predictFlat() writing into @p y in place (no return copy);
     *  the single definition both predictFlat() and predictBatch()
     *  evaluate. */
    void predictFlatInto(const FeatureVector &f,
                         NormalizedMVector &y) const;

    /**
     * Precompiled descent outcomes: the 12 node-predicate bits index
     * straight to the leaf the fixed-trip descent would reach, so the
     * per-prediction work is 12 independent threshold compares and
     * one table load. Built by running the node-array descent for
     * every possible predicate mask (4 KiB, L1-resident).
     */
    std::array<uint8_t, std::size_t{1} << kFlatNodes> leafTable_{};

    void buildFlatTree();
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_DECISION_TREE_HH
