/**
 * @file
 * The manually constructed decision-tree heuristic of Section IV: a
 * 3-layer inter-accelerator tree selecting M1 from (B, I) thresholds
 * (0.5 mid-points by default), followed by the paper's linear
 * M-equations for the intra-accelerator choices (M2-M20). Analytical:
 * train() is a no-op.
 */

#ifndef HETEROMAP_MODEL_DECISION_TREE_HH
#define HETEROMAP_MODEL_DECISION_TREE_HH

#include <iosfwd>

#include "model/predictor.hh"

namespace heteromap {

/** Section IV analytical decision-tree + linear-equation model. */
class DecisionTreeHeuristic : public Predictor
{
  public:
    /** @param threshold Decision threshold (paper default 0.5). */
    explicit DecisionTreeHeuristic(double threshold = 0.5)
        : threshold_(threshold)
    {
    }

    std::string name() const override { return "Decision Tree"; }
    void train(const TrainingSet &) override {}
    NormalizedMVector predict(const FeatureVector &f) const override;

    /** The inter-accelerator (M1) tree, exposed for tests/Fig. 7. */
    AcceleratorKind chooseAccelerator(const FeatureVector &f) const;

    /** Persist the (only) parameter — the decision threshold. */
    void save(std::ostream &os) const;

    /** Restore a heuristic from the save() format. */
    static DecisionTreeHeuristic load(std::istream &is);

  private:
    double threshold_;
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_DECISION_TREE_HH
