/**
 * @file
 * Feed-forward deep-learning predictor (Sec. V-B, Fig. 10): 17 input
 * neurons, two hidden layers of configurable width (the paper's
 * Deep.16/32/64/128 family), 20 output neurons. Tanh hidden
 * activations, sigmoid outputs, Adam optimizer, deterministic
 * seeded initialization.
 */

#ifndef HETEROMAP_MODEL_MLP_HH
#define HETEROMAP_MODEL_MLP_HH

#include <iosfwd>
#include <vector>

#include "model/matrix.hh"
#include "model/predictor.hh"

namespace heteromap {

/** Training hyperparameters for the MLP. */
struct MlpOptions {
    unsigned epochs = 120;
    unsigned batchSize = 32;
    double learningRate = 3e-3;
    double adamBeta1 = 0.9;
    double adamBeta2 = 0.999;
    double adamEpsilon = 1e-8;
    /** Loss weight on the M1 (accelerator-select) output. Choosing
     *  the wrong machine costs far more than a misjudged knob, so the
     *  boundary output trains with extra emphasis. */
    double m1LossWeight = 6.0;
    uint64_t seed = 7;
};

/** Four-layer feed-forward network. */
class Mlp : public Predictor
{
  public:
    /**
     * @param hidden_width Neurons per hidden layer (Deep.<width>).
     * @param options      Optimizer settings.
     */
    explicit Mlp(unsigned hidden_width = 128, MlpOptions options = {});

    std::string name() const override;
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

    /** Final training loss of the last train() call (MSE). */
    double finalLoss() const { return finalLoss_; }

    unsigned hiddenWidth() const { return hiddenWidth_; }

    /** Persist the network weights as text. */
    void save(std::ostream &os) const;

    /** Restore a trained network from the save() format. */
    static Mlp load(std::istream &is);

  private:
    unsigned hiddenWidth_;
    MlpOptions options_;
    double finalLoss_ = 0.0;

    /** One dense layer's parameters and Adam state. */
    struct Layer {
        Matrix w;               //!< out x in
        std::vector<double> b;  //!< out
        Matrix mW, vW;          //!< Adam moments for w
        std::vector<double> mB, vB;
    };
    std::vector<Layer> layers_;

    /** Forward pass; returns activations per layer (input first). */
    std::vector<std::vector<double>>
    forward(const std::vector<double> &input) const;
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_MLP_HH
