/**
 * @file
 * Feed-forward deep-learning predictor (Sec. V-B, Fig. 10): 17 input
 * neurons, two hidden layers of configurable width (the paper's
 * Deep.16/32/64/128 family), 20 output neurons. Tanh hidden
 * activations, sigmoid outputs, Adam optimizer, deterministic
 * seeded initialization.
 */

#ifndef HETEROMAP_MODEL_MLP_HH
#define HETEROMAP_MODEL_MLP_HH

#include <iosfwd>
#include <vector>

#include "model/matrix.hh"
#include "model/predictor.hh"

namespace heteromap {

/** Training hyperparameters for the MLP. */
struct MlpOptions {
    unsigned epochs = 120;
    unsigned batchSize = 32;
    double learningRate = 3e-3;
    double adamBeta1 = 0.9;
    double adamBeta2 = 0.999;
    double adamEpsilon = 1e-8;
    /** Loss weight on the M1 (accelerator-select) output. Choosing
     *  the wrong machine costs far more than a misjudged knob, so the
     *  boundary output trains with extra emphasis. */
    double m1LossWeight = 6.0;
    uint64_t seed = 7;
};

/** Four-layer feed-forward network. */
class Mlp : public Predictor
{
  public:
    /**
     * @param hidden_width Neurons per hidden layer (Deep.<width>).
     * @param options      Optimizer settings.
     */
    explicit Mlp(unsigned hidden_width = 128, MlpOptions options = {});

    std::string name() const override;
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

    /**
     * Batched matrix–matrix forward: one pass through the network
     * serves the whole micro-batch out of a reusable per-thread
     * workspace. Outputs are byte-identical to per-sample predict()
     * — both run the same k-sequential kernel (Matrix::forwardBatch),
     * batching only widens the vectorizable sample dimension.
     */
    void predictBatch(std::span<const FeatureVector> features,
                      std::span<NormalizedMVector> out) const override;
    using Predictor::predictBatch;

    /** Reusable forward buffers; see forwardLayers(). */
    struct BatchWorkspace {
        std::vector<double> in;  //!< layer input, transposed (K x n)
        std::vector<double> out; //!< layer output, transposed (R x n)
    };

    /** Final training loss of the last train() call (MSE). */
    double finalLoss() const { return finalLoss_; }

    unsigned hiddenWidth() const { return hiddenWidth_; }

    /** Persist the network weights as text. */
    void save(std::ostream &os) const;

    /** Restore a trained network from the save() format. */
    static Mlp load(std::istream &is);

  private:
    unsigned hiddenWidth_;
    MlpOptions options_;
    double finalLoss_ = 0.0;

    /** One dense layer's parameters and Adam state. */
    struct Layer {
        Matrix w;               //!< out x in
        std::vector<double> b;  //!< out
        Matrix mW, vW;          //!< Adam moments for w
        std::vector<double> mB, vB;
    };
    std::vector<Layer> layers_;

    /**
     * Training forward pass: fills @p acts with activations per
     * layer (input first), reusing the caller's buffers so the
     * training loop allocates nothing per sample.
     */
    void forward(const double *input,
                 std::vector<std::vector<double>> &acts) const;

    /**
     * Inference forward pass over @p n samples packed transposed in
     * ws.in (kNumFeatures x n); leaves the sigmoid outputs
     * (kNumOutputs x n) in ws.in. Both predict() and predictBatch()
     * run through this one kernel, which is what guarantees their
     * byte-identical outputs at every batch size.
     */
    void forwardLayers(std::size_t n, BatchWorkspace &ws) const;
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_MLP_HH
