/**
 * @file
 * Normalized M-vector encode/decode.
 */

#include "model/predictor.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace heteromap {

namespace {

/** Round a normalized knob scaled by @p max_value, with minimum @p k. */
unsigned
scaleUp(double norm, double max_value, unsigned k)
{
    double value = clamp(norm, 0.0, 1.0) * max_value;
    auto rounded = static_cast<long>(std::lround(value));
    // Ceiling to the machine maximum, floor to the constant k.
    rounded = std::min<long>(rounded, static_cast<long>(max_value));
    return static_cast<unsigned>(
        std::max<long>(rounded, static_cast<long>(k)));
}

double
scaleDown(double value, double max_value)
{
    if (max_value <= 0.0)
        return 0.0;
    return clamp(value / max_value, 0.0, 1.0);
}

constexpr double kMaxBlocktimeMs = 1000.0;
constexpr double kMaxChunkSize = 256.0;
constexpr double kMaxActiveLevels = 4.0;
constexpr double kMaxSpinCount = 250000.0;
constexpr double kMaxStackKb = 8192.0;

} // namespace

void
Predictor::predictBatch(std::span<const FeatureVector> features,
                        std::span<NormalizedMVector> out) const
{
    HM_ASSERT(out.size() >= features.size(),
              "predictBatch output span too small: ", out.size(),
              " < ", features.size());
    for (std::size_t i = 0; i < features.size(); ++i)
        out[i] = predict(features[i]);
}

std::vector<NormalizedMVector>
Predictor::predictBatch(std::span<const FeatureVector> features) const
{
    std::vector<NormalizedMVector> out(features.size());
    predictBatch(features, out);
    return out;
}

void
NormalizedMVector::clamp01()
{
    for (double &v : m)
        v = clamp(v, 0.0, 1.0);
}

MConfig
deployNormalized(const NormalizedMVector &y, const AcceleratorPair &pair)
{
    MConfig c;
    c.accelerator = y.m[0] < 0.5 ? AcceleratorKind::Gpu
                                 : AcceleratorKind::Multicore;
    const AcceleratorSpec &mc = pair.multicore;
    const AcceleratorSpec &gpu = pair.gpu;

    // Multicore hardware choices (M2-M8). k = 1 core / 1 thread.
    c.cores = scaleUp(y.m[1], mc.cores, 1);
    c.threadsPerCore = scaleUp(y.m[2], mc.threadsPerCore, 1);
    c.blocktimeMs =
        clamp(y.m[3], 0.0, 1.0) * kMaxBlocktimeMs + 1.0;
    c.placementSpread =
        clamp((y.m[4] + y.m[5] + y.m[6]) / 3.0, 0.0, 1.0);
    c.affinityMovable = clamp(y.m[7], 0.0, 1.0);

    // OpenMP runtime choices (M9-M18).
    c.schedule = static_cast<SchedulePolicy>(
        std::min(4l, std::lround(clamp(y.m[8], 0.0, 1.0) * 4.0)));
    c.simdWidth = scaleUp(y.m[9], mc.simdWidth, 1);
    c.chunkSize = scaleUp(y.m[10], kMaxChunkSize, 0);
    c.nestedParallelism = y.m[11] >= 0.5;
    c.maxActiveLevels = scaleUp(y.m[12], kMaxActiveLevels, 1);
    c.spinCount = scaleUp(y.m[13], kMaxSpinCount, 0);
    c.activeWaitPolicy = y.m[14] >= 0.5;
    c.procBindClose = y.m[15] >= 0.5;
    c.dynamicTeams = y.m[16] >= 0.5;
    c.stackSizeKb = scaleUp(y.m[17], kMaxStackKb, 256);

    // GPU hardware choices (M19-M20). k = 1 thread.
    c.gpuGlobalThreads = scaleUp(y.m[18], gpu.maxGlobalThreads, 1);
    c.gpuLocalThreads = scaleUp(y.m[19], gpu.maxLocalThreads, 1);
    return c;
}

NormalizedMVector
normalizeConfig(const MConfig &config, const AcceleratorPair &pair)
{
    NormalizedMVector y;
    y.m[0] = config.accelerator == AcceleratorKind::Gpu ? 0.0 : 1.0;
    const AcceleratorSpec &mc = pair.multicore;
    const AcceleratorSpec &gpu = pair.gpu;

    y.m[1] = scaleDown(config.cores, mc.cores);
    y.m[2] = scaleDown(config.threadsPerCore, mc.threadsPerCore);
    y.m[3] = scaleDown(config.blocktimeMs - 1.0, kMaxBlocktimeMs);
    y.m[4] = y.m[5] = y.m[6] = clamp(config.placementSpread, 0.0, 1.0);
    y.m[7] = clamp(config.affinityMovable, 0.0, 1.0);
    y.m[8] = static_cast<double>(config.schedule) / 4.0;
    y.m[9] = scaleDown(config.simdWidth, mc.simdWidth);
    y.m[10] = scaleDown(config.chunkSize, kMaxChunkSize);
    y.m[11] = config.nestedParallelism ? 1.0 : 0.0;
    y.m[12] = scaleDown(config.maxActiveLevels, kMaxActiveLevels);
    y.m[13] = scaleDown(config.spinCount, kMaxSpinCount);
    y.m[14] = config.activeWaitPolicy ? 1.0 : 0.0;
    y.m[15] = config.procBindClose ? 1.0 : 0.0;
    y.m[16] = config.dynamicTeams ? 1.0 : 0.0;
    y.m[17] = scaleDown(config.stackSizeKb, kMaxStackKb);
    y.m[18] = scaleDown(config.gpuGlobalThreads, gpu.maxGlobalThreads);
    y.m[19] = scaleDown(config.gpuLocalThreads, gpu.maxLocalThreads);
    return y;
}

} // namespace heteromap
