/**
 * @file
 * Predictor interface and the normalized M-vector encoding shared by
 * every learner. A predictor maps the 17 (B, I) features to 20
 * normalized machine-choice outputs (Fig. 10); deployNormalized()
 * scales the outputs to a concrete MConfig for a specific
 * multi-accelerator pair ("multiplied with the maximum value of the
 * machine variable being applied", Sec. IV), and normalizeConfig() is
 * its inverse, used to encode tuner-found optima as training targets.
 */

#ifndef HETEROMAP_MODEL_PREDICTOR_HH
#define HETEROMAP_MODEL_PREDICTOR_HH

#include <array>
#include <span>
#include <string>
#include <vector>

#include "arch/presets.hh"
#include "features/feature_vector.hh"

namespace heteromap {

/** Number of predictor outputs: M1-M20. */
inline constexpr std::size_t kNumOutputs = 20;

/** Normalized machine choices, each in [0, 1]. Index = M-number - 1. */
struct NormalizedMVector {
    std::array<double, kNumOutputs> m{};

    /** Clamp every component into [0, 1]. */
    void clamp01();

    bool operator==(const NormalizedMVector &) const = default;
};

/** One training sample: features in, best machine choices out. */
struct TrainingSample {
    FeatureVector x;
    NormalizedMVector y;
};

/** A labelled training corpus. */
using TrainingSet = std::vector<TrainingSample>;

/** Scale a normalized M vector to deployable choices on @p pair. */
MConfig deployNormalized(const NormalizedMVector &y,
                         const AcceleratorPair &pair);

/** Encode a concrete configuration as a normalized M vector. */
NormalizedMVector normalizeConfig(const MConfig &config,
                                  const AcceleratorPair &pair);

/** Abstract learner. */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /** Display name, e.g. "Deep.128". */
    virtual std::string name() const = 0;

    /** Fit to @p data (no-op for analytical models). */
    virtual void train(const TrainingSet &data) = 0;

    /** Predict normalized machine choices for @p features. */
    virtual NormalizedMVector predict(
        const FeatureVector &features) const = 0;

    /**
     * Predict for a micro-batch. @p out must hold features.size()
     * entries. The base implementation loops predict() — correct for
     * every learner; Mlp and DecisionTreeHeuristic override it with
     * vectorized forwards. Contract: out[i] is byte-identical to
     * predict(features[i]) for every i and every batch size, so
     * callers may batch freely without changing results.
     */
    virtual void predictBatch(std::span<const FeatureVector> features,
                              std::span<NormalizedMVector> out) const;

    /** Convenience predictBatch() returning a fresh vector. */
    std::vector<NormalizedMVector>
    predictBatch(std::span<const FeatureVector> features) const;
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_PREDICTOR_HH
