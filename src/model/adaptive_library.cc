/**
 * @file
 * Adaptive-library baseline implementation.
 */

#include "model/adaptive_library.hh"

#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace heteromap {

std::vector<double>
AdaptiveLibrary::reduced(const FeatureVector &f)
{
    return {f.b.b1, f.b.b9, f.b.b10, f.b.b11, 1.0};
}

void
AdaptiveLibrary::train(const TrainingSet &data)
{
    HM_ASSERT(!data.empty(), "cannot train on an empty corpus");

    Matrix x(data.size(), 5);
    for (std::size_t r = 0; r < data.size(); ++r) {
        auto row = reduced(data[r].x);
        for (std::size_t c = 0; c < row.size(); ++c)
            x.at(r, c) = row[c];
    }
    Matrix y(data.size(), kNumOutputs);
    for (std::size_t r = 0; r < data.size(); ++r)
        for (std::size_t c = 0; c < kNumOutputs; ++c)
            y.at(r, c) = data[r].y.m[c];

    Matrix xt = x.transpose();
    weights_ = choleskySolve(xt.multiply(x), xt.multiply(y), 1e-3);
}

NormalizedMVector
AdaptiveLibrary::predict(const FeatureVector &f) const
{
    HM_ASSERT(weights_.rows() == 5,
              "AdaptiveLibrary::predict before train");
    auto input = reduced(f);
    NormalizedMVector out;
    for (std::size_t k = 0; k < kNumOutputs; ++k) {
        double sum = 0.0;
        for (std::size_t c = 0; c < input.size(); ++c)
            sum += weights_.at(c, k) * input[c];
        out.m[k] = sum;
    }
    out.clamp01();
    return out;
}

void
AdaptiveLibrary::save(std::ostream &os) const
{
    HM_ASSERT(weights_.rows() == 5,
              "AdaptiveLibrary::save before train");
    os << "adaptive-library v1\n";
    saveMatrix(os, weights_);
}

AdaptiveLibrary
AdaptiveLibrary::load(std::istream &is)
{
    std::string tag;
    std::string version;
    is >> tag >> version;
    if (is.fail() || tag != "adaptive-library" || version != "v1")
        HM_FATAL("AdaptiveLibrary::load: bad header");
    AdaptiveLibrary model;
    model.weights_ = loadMatrix(is);
    if (model.weights_.rows() != 5 ||
        model.weights_.cols() != kNumOutputs) {
        HM_FATAL("AdaptiveLibrary::load: unexpected weight shape");
    }
    return model;
}

} // namespace heteromap
