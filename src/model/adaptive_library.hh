/**
 * @file
 * Adaptive-library baseline (Table IV, after Rinnegan [38]): a simple
 * performance-model library whose prediction is proportional only to
 * the data-movement and accelerator-utilization parameters a
 * programmer/profiler supplies — here the data-movement B variables
 * (B9-B11) and the parallelism share (B1) — with everything else held
 * at profile-derived defaults. Deliberately under-parameterized.
 */

#ifndef HETEROMAP_MODEL_ADAPTIVE_LIBRARY_HH
#define HETEROMAP_MODEL_ADAPTIVE_LIBRARY_HH

#include <iosfwd>

#include "model/matrix.hh"
#include "model/predictor.hh"

namespace heteromap {

/** Rinnegan-style adaptive-library predictor. */
class AdaptiveLibrary : public Predictor
{
  public:
    AdaptiveLibrary() = default;

    std::string name() const override { return "Adaptive Library"; }
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

    /** Persist the fitted reduced-feature weights as text. */
    void save(std::ostream &os) const;

    /** Restore a fitted model from the save() format. */
    static AdaptiveLibrary load(std::istream &is);

  private:
    /** Reduced feature view: [b1, b9, b10, b11, bias]. */
    static std::vector<double> reduced(const FeatureVector &f);

    Matrix weights_; //!< 5 x kNumOutputs
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_ADAPTIVE_LIBRARY_HH
