/**
 * @file
 * Table-lookup predictors backed by the profiler database. Section V
 * describes the offline store as "indexed using B,I tuples to get M
 * solutions"; these predictors use that index directly — an exact hit
 * on the discretized feature grid when available, otherwise the
 * (distance-weighted) average of the k nearest stored tuples. They
 * serve as the non-parametric reference point for the Table IV
 * learners and as the paper's database-only deployment mode.
 */

#ifndef HETEROMAP_MODEL_TABLE_LOOKUP_HH
#define HETEROMAP_MODEL_TABLE_LOOKUP_HH

#include <iosfwd>

#include "model/predictor.hh"

namespace heteromap {

/** k-nearest-neighbor lookup over the training tuples. */
class TableLookupPredictor : public Predictor
{
  public:
    /**
     * @param k      Neighbors to blend (1 = pure nearest tuple).
     * @param power  Inverse-distance weighting exponent (0 = uniform).
     */
    explicit TableLookupPredictor(unsigned k = 3, double power = 2.0);

    std::string name() const override;
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

    /** Number of stored tuples. */
    std::size_t size() const { return samples_.size(); }

    /** Persist the lookup parameters and every stored tuple as text. */
    void save(std::ostream &os) const;

    /** Restore a trained table from the save() format. */
    static TableLookupPredictor load(std::istream &is);

  private:
    unsigned k_;
    double power_;
    TrainingSet samples_;
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_TABLE_LOOKUP_HH
