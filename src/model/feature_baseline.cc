/**
 * @file
 * FeatureBaseline implementation: a thin aggregate over one
 * QuantileSketch per feature dimension.
 */

#include "model/feature_baseline.hh"

#include <istream>
#include <ostream>
#include <sstream>

namespace heteromap {

void
FeatureBaseline::add(const FeatureVector &features)
{
    const std::array<double, kNumFeatures> flat = features.asArray();
    for (std::size_t d = 0; d < kDims; ++d)
        dims[d].insert(flat[d]);
    samples += 1;
}

void
FeatureBaseline::merge(const FeatureBaseline &other)
{
    for (std::size_t d = 0; d < kDims; ++d)
        dims[d].merge(other.dims[d]);
    samples += other.samples;
}

void
FeatureBaseline::clear()
{
    for (auto &sketch : dims)
        sketch.clear();
    samples = 0;
}

void
FeatureBaseline::save(std::ostream &os) const
{
    os << "feature-baseline " << kDims << ' ' << samples << '\n';
    for (const auto &sketch : dims)
        sketch.save(os);
}

std::string
FeatureBaseline::toString() const
{
    std::ostringstream oss;
    save(oss);
    return oss.str();
}

bool
FeatureBaseline::load(std::istream &is, FeatureBaseline *out)
{
    std::string magic;
    std::size_t dims = 0;
    uint64_t samples = 0;
    if (!(is >> magic >> dims >> samples) ||
        magic != "feature-baseline" || dims != kDims)
        return false;
    FeatureBaseline baseline;
    for (std::size_t d = 0; d < kDims; ++d) {
        if (!telemetry::QuantileSketch::load(is, &baseline.dims[d]))
            return false;
    }
    baseline.samples = samples;
    *out = std::move(baseline);
    return true;
}

bool
FeatureBaseline::operator==(const FeatureBaseline &other) const
{
    return samples == other.samples && dims == other.dims;
}

FeatureBaseline
buildFeatureBaseline(const TrainingSet &corpus)
{
    FeatureBaseline baseline;
    for (const TrainingSample &sample : corpus)
        baseline.add(sample.x);
    return baseline;
}

} // namespace heteromap
