/**
 * @file
 * TrainingSet helper implementation.
 */

#include "model/dataset.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {

void
shuffleTrainingSet(TrainingSet &data, uint64_t seed)
{
    Rng rng(seed);
    rng.shuffle(data);
}

std::pair<TrainingSet, TrainingSet>
splitTrainingSet(const TrainingSet &data, double train_fraction)
{
    HM_ASSERT(train_fraction > 0.0 && train_fraction <= 1.0,
              "train fraction out of range");
    auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(data.size()));
    cut = std::min(cut, data.size());
    TrainingSet train(data.begin(), data.begin() + cut);
    TrainingSet valid(data.begin() + cut, data.end());
    return {std::move(train), std::move(valid)};
}

Matrix
featureMatrix(const TrainingSet &data)
{
    Matrix x(data.size(), kNumFeatures);
    for (std::size_t r = 0; r < data.size(); ++r) {
        auto flat = data[r].x.asArray();
        for (std::size_t c = 0; c < kNumFeatures; ++c)
            x.at(r, c) = flat[c];
    }
    return x;
}

Matrix
targetMatrix(const TrainingSet &data)
{
    Matrix y(data.size(), kNumOutputs);
    for (std::size_t r = 0; r < data.size(); ++r)
        for (std::size_t c = 0; c < kNumOutputs; ++c)
            y.at(r, c) = data[r].y.m[c];
    return y;
}

double
meanSquaredError(const Predictor &predictor, const TrainingSet &data)
{
    if (data.empty())
        return 0.0;
    // Evaluate through the batched forward path in fixed-size chunks:
    // same per-sample outputs (predictBatch contract), one matrix-
    // matrix pass per chunk instead of a matrix-vector pass per row.
    constexpr std::size_t kChunk = 64;
    std::vector<FeatureVector> features(std::min(kChunk, data.size()));
    std::vector<NormalizedMVector> pred(features.size());
    double total = 0.0;
    for (std::size_t start = 0; start < data.size(); start += kChunk) {
        const std::size_t n =
            std::min(kChunk, data.size() - start);
        for (std::size_t i = 0; i < n; ++i)
            features[i] = data[start + i].x;
        predictor.predictBatch(
            std::span<const FeatureVector>(features.data(), n),
            std::span<NormalizedMVector>(pred.data(), n));
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t k = 0; k < kNumOutputs; ++k) {
                double d = pred[i].m[k] - data[start + i].y.m[k];
                total += d * d;
            }
        }
    }
    return total / (static_cast<double>(data.size()) * kNumOutputs);
}

} // namespace heteromap
