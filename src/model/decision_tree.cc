/**
 * @file
 * Decision-tree heuristic implementation. The M1 tree encodes the
 * partial decisions Section IV describes; the M2-M20 values come from
 * the paper's linear equations:
 *
 *   Avg.Deg      = |I3 - I2/I1|
 *   Avg.Deg.Dia  = |(I4 + Avg.Deg) / 2|
 *   M19 = I1 * max_global_threads + k      M20 = Avg.Deg * max_local + k
 *   M2  = I1 * max_cores + k               M3, M10 = Avg.Deg * max_mt + k
 *   M4  = avg(B12, B13) * max_wait + k     M5-7 = Avg.Deg.Dia * max_place
 *   M8  = avg(Avg.Deg.Dia, B10) * max_place (k = 0)
 *
 * All outputs here are normalized; deployNormalized() applies the
 * machine maxima and the k floors.
 */

#include "model/decision_tree.hh"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>

#include "util/logging.hh"
#include "util/stats.hh"

namespace heteromap {

void
DecisionTreeHeuristic::buildFlatTree()
{
    const double t = threshold_;
    // The nested-if walk in chooseAccelerator(), unrolled into a
    // predicated node array. Feature indices follow the flattening
    // order [b1..b13=0..12, i1..i4=13..16]; 17-21 are the synthetic
    // features (see kFlatFeatures). Every OR/AND ladder of the
    // nested-if form is a single node over a max/min synthetic:
    // max(a, b) > t iff a > t || b > t, and min(a, b) > t iff
    // a > t && b > t, exactly, for the in-range feature values.
    nodes_ = {{
        {t, 18, 1, 3},   // 0: any parallel-for phase dominates?
        {t, 13, 2, 9},   // 1: large graph (I1)?
        {t, 19, kLeafMulticore, 9},          // 2: indirect or FP?
        {t, 3, kLeafMulticore, 4},           // 3: push-pop (B4)
        {t, 4, 5, 8},                        // 4: reductions (B5)
        {t, 9, kLeafMulticore, 6},           // 5: RW shared (B10)
        {0.5, 21, kLeafGpu, 7},              // 6: FP, tiny local?
        {t, 10, kLeafMulticore, kLeafGpu},   // 7: local data (B11)
        {0.0, 17, kLeafMulticore, kLeafGpu}, // 8: mc - gpu score
        {t, 20, kLeafMulticore, kLeafGpu},   // 9: contended RW share?
        {0.0, 0, kLeafGpu, kLeafGpu},             // 10: GPU leaf
        {0.0, 0, kLeafMulticore, kLeafMulticore}, // 11: MC leaf
    }};

    // Precompile the descent: for every possible predicate mask, walk
    // the node array once and record the leaf. chooseAcceleratorFlat
    // then reduces to computing the mask and one table load; the
    // fixed-trip descent below is the sole definition of what a mask
    // means, so the table is exact by construction.
    for (std::size_t mask = 0; mask < leafTable_.size(); ++mask) {
        int node = 0;
        for (int d = 0; d < kFlatDepth; ++d) {
            const FlatNode nd = nodes_[static_cast<std::size_t>(node)];
            node = (mask >> node) & 1u ? nd.hi : nd.lo;
        }
        leafTable_[mask] = static_cast<uint8_t>(node == kLeafGpu);
    }
}

uint32_t
DecisionTreeHeuristic::predicateMask(const FeatureVector &f) const
{
    const BVariables &b = f.b;
    const IVariables &i = f.i;
    const double t = threshold_;
    const double gpu_score = b.b1 + b.b2 + b.b3 + 0.5 * b.b5;
    const double mc_score = 2.0 * b.b4 + b.b8 + b.b10 + b.b12 +
                            b.b6 * (0.5 + i.i1);

    // One bit per nodes_ entry, node order, evaluated straight from
    // the struct fields: all compares are independent, so the CPU
    // overlaps them freely and nothing here is a data-dependent
    // branch. Bit n must compute exactly x[nodes_[n].feat] >
    // nodes_[n].thr in buildFlatTree()'s synthetic-feature terms:
    //  - node 6 reads the 0/1 FP-with-tiny-local flag against 0.5,
    //    which is precisely b6 > 0 && b11 <= 0.1;
    //  - node 8 reads mc_score - gpu_score against 0 (the sign-
    //    preserving rewrite of "gpu_score >= mc_score");
    //  - the self-looping leaf nodes 10-11 ignore their predicate,
    //    so their bits stay 0.
    uint32_t bits = 0;
    bits |= static_cast<uint32_t>(
                std::max(b.b1, std::max(b.b2, b.b3)) > t)
            << 0;
    bits |= static_cast<uint32_t>(i.i1 > t) << 1;
    bits |= static_cast<uint32_t>(std::max(b.b8, b.b6) > t) << 2;
    bits |= static_cast<uint32_t>(b.b4 > t) << 3;
    bits |= static_cast<uint32_t>(b.b5 > t) << 4;
    bits |= static_cast<uint32_t>(b.b10 > t) << 5;
    bits |= static_cast<uint32_t>(b.b6 > 0.0 && !(b.b11 > 0.1)) << 6;
    bits |= static_cast<uint32_t>(b.b11 > t) << 7;
    bits |= static_cast<uint32_t>(mc_score - gpu_score > 0.0) << 8;
    bits |= static_cast<uint32_t>(std::min(b.b10, b.b12) > t) << 9;
    return bits;
}

AcceleratorKind
DecisionTreeHeuristic::chooseAcceleratorFlat(const FeatureVector &f) const
{
    // The precompiled table maps the predicate mask straight to the
    // leaf the node-array descent would reach.
    return leafTable_[predicateMask(f)] != 0 ? AcceleratorKind::Gpu
                                             : AcceleratorKind::Multicore;
}

DecisionTreeHeuristic::DecisionPath
DecisionTreeHeuristic::decisionPath(const FeatureVector &f) const
{
    DecisionPath path;
    path.predicateMask = predicateMask(f);
    path.leaf = leafTable_[path.predicateMask] != 0
                    ? uint8_t(kLeafGpu)
                    : uint8_t(kLeafMulticore);
    return path;
}

AcceleratorKind
DecisionTreeHeuristic::chooseAccelerator(const FeatureVector &f) const
{
    const BVariables &b = f.b;
    const IVariables &i = f.i;
    const double t = threshold_;

    // Layer 1: dominant outer-loop phase kind.
    if (b.b1 > t || b.b2 > t || b.b3 > t) {
        // Abundant vertex-level parallelism favors the GPU...
        // Layer 2: ...unless the graph is large and the benchmark
        // leans on indirect addressing or FP (Sec. IV: Conn. Comp.,
        // PageRank, Comm. run on multicores when graphs are large).
        if (i.i1 > t && (b.b8 > t || b.b6 > t))
            return AcceleratorKind::Multicore;
        // Layer 3: heavily contended read-write shared data throttles
        // GPU atomics.
        if (b.b10 > t && b.b12 > t)
            return AcceleratorKind::Multicore;
        return AcceleratorKind::Gpu;
    }

    // Layer 1: serial push-pop accesses.
    if (b.b4 > t) {
        // Multicores handle queue ordering and, with dense graphs,
        // keep the structure resident in their larger caches.
        return AcceleratorKind::Multicore;
    }

    // Layer 1: reduction-dominant benchmarks.
    if (b.b5 > t) {
        // Layer 2: reductions over read-write shared data want the
        // multicore's coherent caches.
        if (b.b10 > t)
            return AcceleratorKind::Multicore;
        // Layer 3: reductions with some FP and negligible local
        // computation run well on the GPU's small fast threads.
        if (b.b6 > 0.0 && b.b11 <= 0.1)
            return AcceleratorKind::Gpu;
        return b.b11 > t ? AcceleratorKind::Multicore
                         : AcceleratorKind::Gpu;
    }

    // Mixed phase profile: weigh GPU-friendly against multicore-
    // friendly evidence.
    const double gpu_score = b.b1 + b.b2 + b.b3 + 0.5 * b.b5;
    const double mc_score = 2.0 * b.b4 + b.b8 + b.b10 + b.b12 +
                            b.b6 * (0.5 + i.i1);
    return gpu_score >= mc_score ? AcceleratorKind::Gpu
                                 : AcceleratorKind::Multicore;
}

NormalizedMVector
DecisionTreeHeuristic::predict(const FeatureVector &f) const
{
    const BVariables &b = f.b;
    const IVariables &i = f.i;

    const double avg_deg = i.avgDegreeTerm();
    const double avg_deg_dia = i.avgDegreeDiameterTerm();

    NormalizedMVector y;
    y.m[0] = chooseAccelerator(f) == AcceleratorKind::Gpu ? 0.0 : 1.0;

    // M2: cores from outer-loop parallelism (vertex count), floored
    // at one grid increment (k: "at least one core must be used").
    y.m[1] = std::max(0.1, i.i1);
    // M3: threads per core from graph density, same floor.
    y.m[2] = std::max(0.1, avg_deg);
    // M4: blocktime from contention level.
    y.m[3] = (b.b12 + b.b13) / 2.0;
    // M5-M7: thread placement from degree-diameter spread.
    y.m[4] = y.m[5] = y.m[6] = avg_deg_dia;
    // M8: affinity from placement spread and read-write sharing.
    y.m[7] = (avg_deg_dia + b.b10) / 2.0;
    // M9: dynamic scheduling for read-write shared data (Sec. III-A),
    // static otherwise. Normalized: static=0, dynamic=0.75.
    y.m[8] = b.b10 > threshold_ ? 0.75 : 0.0;
    // M10: SIMD width from density (same relation as M3).
    y.m[9] = avg_deg;
    // M11: chunk size — small chunks for skewed/contended work.
    y.m[10] = clamp(0.5 - b.b12 / 2.0, 0.0, 1.0) * avg_deg;
    // M12/M13: nested parallelism when barrier-heavy multi-phase.
    y.m[11] = b.b13 > threshold_ ? 1.0 : 0.0;
    y.m[12] = b.b13;
    // M14: spin count from contention.
    y.m[13] = b.b12;
    // M15: active wait policy under high contention + barriers.
    y.m[14] = (b.b12 + b.b13) / 2.0 > threshold_ ? 1.0 : 0.0;
    // M16: bind threads close when sharing is heavy.
    y.m[15] = b.b10 > threshold_ ? 1.0 : 0.0;
    // M17: dynamic teams only for pareto-style irregular phases.
    y.m[16] = (b.b2 + b.b3) > threshold_ ? 1.0 : 0.0;
    // M18: stack size scales with local data.
    y.m[17] = b.b11;
    // M19: GPU global threads from the vertex count. The k floor is
    // one grid increment — deploying literally one thread is never
    // the right reading of "at least 1 thread must be spawned".
    y.m[18] = std::max(0.1, i.i1);
    // M20: GPU local threads from the graph density, same floor.
    y.m[19] = std::max(0.1, avg_deg);

    y.clamp01();
    return y;
}

void
DecisionTreeHeuristic::predictFlatInto(const FeatureVector &f,
                                       NormalizedMVector &y) const
{
    const BVariables &b = f.b;
    const IVariables &i = f.i;
    const double t = threshold_;

    const double avg_deg = i.avgDegreeTerm();
    const double avg_deg_dia = i.avgDegreeDiameterTerm();

    // Same M-equations as predict(), with every data-dependent
    // ternary replaced by an arithmetic select. Multiplying a
    // constant by a 0/1 bool yields exactly that constant or exactly
    // 0.0, so the outputs stay byte-identical to the branching path.
    // Written in place with the [0, 1] clamp fused per element —
    // clamping each value as it lands is the same arithmetic as the
    // trailing clamp01() pass predict() runs.
    double *__restrict m = y.m.data();
    m[0] = static_cast<double>(leafTable_[predicateMask(f)] == 0);
    m[1] = clamp(std::max(0.1, i.i1), 0.0, 1.0);
    m[2] = clamp(std::max(0.1, avg_deg), 0.0, 1.0);
    m[3] = clamp((b.b12 + b.b13) / 2.0, 0.0, 1.0);
    m[4] = m[5] = m[6] = clamp(avg_deg_dia, 0.0, 1.0);
    m[7] = clamp((avg_deg_dia + b.b10) / 2.0, 0.0, 1.0);
    m[8] = 0.75 * static_cast<double>(b.b10 > t);
    m[9] = clamp(avg_deg, 0.0, 1.0);
    m[10] = clamp(clamp(0.5 - b.b12 / 2.0, 0.0, 1.0) * avg_deg, 0.0,
                  1.0);
    m[11] = static_cast<double>(b.b13 > t);
    m[12] = clamp(b.b13, 0.0, 1.0);
    m[13] = clamp(b.b12, 0.0, 1.0);
    m[14] = static_cast<double>((b.b12 + b.b13) / 2.0 > t);
    m[15] = static_cast<double>(b.b10 > t);
    m[16] = static_cast<double>((b.b2 + b.b3) > t);
    m[17] = clamp(b.b11, 0.0, 1.0);
    m[18] = m[1];
    m[19] = m[2];
}

NormalizedMVector
DecisionTreeHeuristic::predictFlat(const FeatureVector &f) const
{
    NormalizedMVector y;
    predictFlatInto(f, y);
    return y;
}

void
DecisionTreeHeuristic::predictBatch(
    std::span<const FeatureVector> features,
    std::span<NormalizedMVector> out) const
{
    HM_ASSERT(out.size() >= features.size(),
              "predictBatch output span too small: ", out.size(),
              " < ", features.size());
    for (std::size_t idx = 0; idx < features.size(); ++idx)
        predictFlatInto(features[idx], out[idx]);
}

void
DecisionTreeHeuristic::save(std::ostream &os) const
{
    os << "decision-tree v1 " << std::setprecision(17) << threshold_
       << "\n";
}

DecisionTreeHeuristic
DecisionTreeHeuristic::load(std::istream &is)
{
    std::string tag;
    std::string version;
    double threshold = 0.0;
    is >> tag >> version >> threshold;
    if (is.fail() || tag != "decision-tree" || version != "v1")
        HM_FATAL("DecisionTreeHeuristic::load: bad header");
    return DecisionTreeHeuristic(threshold);
}

} // namespace heteromap
