/**
 * @file
 * Decision-tree heuristic implementation. The M1 tree encodes the
 * partial decisions Section IV describes; the M2-M20 values come from
 * the paper's linear equations:
 *
 *   Avg.Deg      = |I3 - I2/I1|
 *   Avg.Deg.Dia  = |(I4 + Avg.Deg) / 2|
 *   M19 = I1 * max_global_threads + k      M20 = Avg.Deg * max_local + k
 *   M2  = I1 * max_cores + k               M3, M10 = Avg.Deg * max_mt + k
 *   M4  = avg(B12, B13) * max_wait + k     M5-7 = Avg.Deg.Dia * max_place
 *   M8  = avg(Avg.Deg.Dia, B10) * max_place (k = 0)
 *
 * All outputs here are normalized; deployNormalized() applies the
 * machine maxima and the k floors.
 */

#include "model/decision_tree.hh"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>

#include "util/logging.hh"
#include "util/stats.hh"

namespace heteromap {

AcceleratorKind
DecisionTreeHeuristic::chooseAccelerator(const FeatureVector &f) const
{
    const BVariables &b = f.b;
    const IVariables &i = f.i;
    const double t = threshold_;

    // Layer 1: dominant outer-loop phase kind.
    if (b.b1 > t || b.b2 > t || b.b3 > t) {
        // Abundant vertex-level parallelism favors the GPU...
        // Layer 2: ...unless the graph is large and the benchmark
        // leans on indirect addressing or FP (Sec. IV: Conn. Comp.,
        // PageRank, Comm. run on multicores when graphs are large).
        if (i.i1 > t && (b.b8 > t || b.b6 > t))
            return AcceleratorKind::Multicore;
        // Layer 3: heavily contended read-write shared data throttles
        // GPU atomics.
        if (b.b10 > t && b.b12 > t)
            return AcceleratorKind::Multicore;
        return AcceleratorKind::Gpu;
    }

    // Layer 1: serial push-pop accesses.
    if (b.b4 > t) {
        // Multicores handle queue ordering and, with dense graphs,
        // keep the structure resident in their larger caches.
        return AcceleratorKind::Multicore;
    }

    // Layer 1: reduction-dominant benchmarks.
    if (b.b5 > t) {
        // Layer 2: reductions over read-write shared data want the
        // multicore's coherent caches.
        if (b.b10 > t)
            return AcceleratorKind::Multicore;
        // Layer 3: reductions with some FP and negligible local
        // computation run well on the GPU's small fast threads.
        if (b.b6 > 0.0 && b.b11 <= 0.1)
            return AcceleratorKind::Gpu;
        return b.b11 > t ? AcceleratorKind::Multicore
                         : AcceleratorKind::Gpu;
    }

    // Mixed phase profile: weigh GPU-friendly against multicore-
    // friendly evidence.
    const double gpu_score = b.b1 + b.b2 + b.b3 + 0.5 * b.b5;
    const double mc_score = 2.0 * b.b4 + b.b8 + b.b10 + b.b12 +
                            b.b6 * (0.5 + i.i1);
    return gpu_score >= mc_score ? AcceleratorKind::Gpu
                                 : AcceleratorKind::Multicore;
}

NormalizedMVector
DecisionTreeHeuristic::predict(const FeatureVector &f) const
{
    const BVariables &b = f.b;
    const IVariables &i = f.i;

    const double avg_deg = i.avgDegreeTerm();
    const double avg_deg_dia = i.avgDegreeDiameterTerm();

    NormalizedMVector y;
    y.m[0] = chooseAccelerator(f) == AcceleratorKind::Gpu ? 0.0 : 1.0;

    // M2: cores from outer-loop parallelism (vertex count), floored
    // at one grid increment (k: "at least one core must be used").
    y.m[1] = std::max(0.1, i.i1);
    // M3: threads per core from graph density, same floor.
    y.m[2] = std::max(0.1, avg_deg);
    // M4: blocktime from contention level.
    y.m[3] = (b.b12 + b.b13) / 2.0;
    // M5-M7: thread placement from degree-diameter spread.
    y.m[4] = y.m[5] = y.m[6] = avg_deg_dia;
    // M8: affinity from placement spread and read-write sharing.
    y.m[7] = (avg_deg_dia + b.b10) / 2.0;
    // M9: dynamic scheduling for read-write shared data (Sec. III-A),
    // static otherwise. Normalized: static=0, dynamic=0.75.
    y.m[8] = b.b10 > threshold_ ? 0.75 : 0.0;
    // M10: SIMD width from density (same relation as M3).
    y.m[9] = avg_deg;
    // M11: chunk size — small chunks for skewed/contended work.
    y.m[10] = clamp(0.5 - b.b12 / 2.0, 0.0, 1.0) * avg_deg;
    // M12/M13: nested parallelism when barrier-heavy multi-phase.
    y.m[11] = b.b13 > threshold_ ? 1.0 : 0.0;
    y.m[12] = b.b13;
    // M14: spin count from contention.
    y.m[13] = b.b12;
    // M15: active wait policy under high contention + barriers.
    y.m[14] = (b.b12 + b.b13) / 2.0 > threshold_ ? 1.0 : 0.0;
    // M16: bind threads close when sharing is heavy.
    y.m[15] = b.b10 > threshold_ ? 1.0 : 0.0;
    // M17: dynamic teams only for pareto-style irregular phases.
    y.m[16] = (b.b2 + b.b3) > threshold_ ? 1.0 : 0.0;
    // M18: stack size scales with local data.
    y.m[17] = b.b11;
    // M19: GPU global threads from the vertex count. The k floor is
    // one grid increment — deploying literally one thread is never
    // the right reading of "at least 1 thread must be spawned".
    y.m[18] = std::max(0.1, i.i1);
    // M20: GPU local threads from the graph density, same floor.
    y.m[19] = std::max(0.1, avg_deg);

    y.clamp01();
    return y;
}

void
DecisionTreeHeuristic::save(std::ostream &os) const
{
    os << "decision-tree v1 " << std::setprecision(17) << threshold_
       << "\n";
}

DecisionTreeHeuristic
DecisionTreeHeuristic::load(std::istream &is)
{
    std::string tag;
    std::string version;
    double threshold = 0.0;
    is >> tag >> version >> threshold;
    if (is.fail() || tag != "decision-tree" || version != "v1")
        HM_FATAL("DecisionTreeHeuristic::load: bad header");
    return DecisionTreeHeuristic(threshold);
}

} // namespace heteromap
