/**
 * @file
 * MLP implementation: manual backprop with Adam over the fixed
 * 17 -> H -> H -> 20 topology.
 */

#include "model/mlp.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"
#include "util/rng.hh"

namespace heteromap {

namespace {

double
sigmoid(double x)
{
    return 1.0 / (1.0 + std::exp(-x));
}

/**
 * Per-thread forward workspace. An Mlp snapshot is shared read-only
 * across serving worker threads, so the scratch buffers must be
 * thread-local rather than members.
 */
Mlp::BatchWorkspace &
threadWorkspace()
{
    static thread_local Mlp::BatchWorkspace ws;
    return ws;
}

} // namespace

Mlp::Mlp(unsigned hidden_width, MlpOptions options)
    : hiddenWidth_(std::max(1u, hidden_width)), options_(options)
{
    const std::size_t dims[] = {kNumFeatures, hiddenWidth_, hiddenWidth_,
                                kNumOutputs};
    Rng rng(options_.seed);
    for (std::size_t l = 0; l + 1 < std::size(dims); ++l) {
        Layer layer;
        const std::size_t fan_in = dims[l];
        const std::size_t fan_out = dims[l + 1];
        layer.w = Matrix(fan_out, fan_in);
        // Xavier/Glorot uniform initialization.
        const double bound =
            std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
        for (double &x : layer.w.data())
            x = rng.nextDouble(-bound, bound);
        layer.b.assign(fan_out, 0.0);
        layer.mW = Matrix(fan_out, fan_in);
        layer.vW = Matrix(fan_out, fan_in);
        layer.mB.assign(fan_out, 0.0);
        layer.vB.assign(fan_out, 0.0);
        layers_.push_back(std::move(layer));
    }
}

std::string
Mlp::name() const
{
    std::ostringstream oss;
    oss << "Deep." << hiddenWidth_;
    return oss.str();
}

void
Mlp::forward(const double *input,
             std::vector<std::vector<double>> &acts) const
{
    acts.resize(layers_.size() + 1);
    acts[0].assign(input, input + kNumFeatures);
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        std::vector<double> &z = acts[l + 1];
        z.resize(layer.w.rows());
        layer.w.applyInto(acts[l].data(), z.data());
        for (std::size_t i = 0; i < z.size(); ++i) {
            z[i] += layer.b[i];
            z[i] = (l + 1 == layers_.size()) ? sigmoid(z[i])
                                             : std::tanh(z[i]);
        }
    }
}

void
Mlp::forwardLayers(std::size_t n, BatchWorkspace &ws) const
{
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        const std::size_t rows = layer.w.rows();
        ws.out.resize(rows * n);
        layer.w.forwardBatch(ws.in.data(), n, ws.out.data());
        const bool last = l + 1 == layers_.size();
        const double *__restrict b = layer.b.data();
        double *__restrict z = ws.out.data();
        for (std::size_t r = 0; r < rows; ++r) {
            double *__restrict row = z + r * n;
            const double bias = b[r];
            for (std::size_t j = 0; j < n; ++j) {
                const double v = row[j] + bias;
                row[j] = last ? sigmoid(v) : std::tanh(v);
            }
        }
        std::swap(ws.in, ws.out);
    }
}

void
Mlp::train(const TrainingSet &data)
{
    HM_ASSERT(!data.empty(), "cannot train on an empty corpus");
    Rng rng(options_.seed ^ 0xfeedULL);

    std::vector<std::size_t> order(data.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    uint64_t step = 0;
    double epoch_loss = 0.0;
    std::vector<std::vector<double>> acts;

    for (unsigned epoch = 0; epoch < options_.epochs; ++epoch) {
        rng.shuffle(order);
        epoch_loss = 0.0;

        for (std::size_t start = 0; start < order.size();
             start += options_.batchSize) {
            const std::size_t end =
                std::min(order.size(), start + options_.batchSize);
            const double batch =
                static_cast<double>(end - start);

            // Accumulate gradients over the mini-batch.
            std::vector<Matrix> gradW;
            std::vector<std::vector<double>> gradB;
            for (const auto &layer : layers_) {
                gradW.emplace_back(layer.w.rows(), layer.w.cols());
                gradB.emplace_back(layer.b.size(), 0.0);
            }

            for (std::size_t s = start; s < end; ++s) {
                const TrainingSample &sample = data[order[s]];
                const auto flat = sample.x.asArray();
                forward(flat.data(), acts);
                const auto &out = acts.back();

                // Output delta: d(MSE)/dz with sigmoid output.
                std::vector<double> delta(kNumOutputs);
                for (std::size_t k = 0; k < kNumOutputs; ++k) {
                    double err = out[k] - sample.y.m[k];
                    double weight =
                        k == 0 ? options_.m1LossWeight : 1.0;
                    epoch_loss += err * err;
                    delta[k] =
                        weight * err * out[k] * (1.0 - out[k]);
                }

                for (std::size_t li = layers_.size(); li > 0; --li) {
                    const std::size_t l = li - 1;
                    const auto &a_in = acts[l];
                    for (std::size_t i = 0; i < delta.size(); ++i) {
                        gradB[l][i] += delta[i];
                        for (std::size_t j = 0; j < a_in.size(); ++j)
                            gradW[l].at(i, j) += delta[i] * a_in[j];
                    }
                    if (l == 0)
                        break;
                    // Propagate delta through W and tanh'.
                    std::vector<double> prev(a_in.size(), 0.0);
                    for (std::size_t j = 0; j < a_in.size(); ++j) {
                        double sum = 0.0;
                        for (std::size_t i = 0; i < delta.size(); ++i)
                            sum += layers_[l].w.at(i, j) * delta[i];
                        prev[j] = sum * (1.0 - a_in[j] * a_in[j]);
                    }
                    delta = std::move(prev);
                }
            }

            // Adam update.
            ++step;
            const double b1 = options_.adamBeta1;
            const double b2 = options_.adamBeta2;
            const double bias1 =
                1.0 - std::pow(b1, static_cast<double>(step));
            const double bias2 =
                1.0 - std::pow(b2, static_cast<double>(step));
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer &layer = layers_[l];
                auto &gw = gradW[l].data();
                auto &w = layer.w.data();
                auto &mw = layer.mW.data();
                auto &vw = layer.vW.data();
                for (std::size_t i = 0; i < w.size(); ++i) {
                    double g = gw[i] / batch;
                    mw[i] = b1 * mw[i] + (1.0 - b1) * g;
                    vw[i] = b2 * vw[i] + (1.0 - b2) * g * g;
                    w[i] -= options_.learningRate * (mw[i] / bias1) /
                            (std::sqrt(vw[i] / bias2) +
                             options_.adamEpsilon);
                }
                for (std::size_t i = 0; i < layer.b.size(); ++i) {
                    double g = gradB[l][i] / batch;
                    layer.mB[i] = b1 * layer.mB[i] + (1.0 - b1) * g;
                    layer.vB[i] =
                        b2 * layer.vB[i] + (1.0 - b2) * g * g;
                    layer.b[i] -= options_.learningRate *
                                  (layer.mB[i] / bias1) /
                                  (std::sqrt(layer.vB[i] / bias2) +
                                   options_.adamEpsilon);
                }
            }
        }
    }

    finalLoss_ = epoch_loss /
                 (static_cast<double>(data.size()) * kNumOutputs);
}

NormalizedMVector
Mlp::predict(const FeatureVector &f) const
{
    BatchWorkspace &ws = threadWorkspace();
    const auto flat = f.asArray();
    ws.in.assign(flat.begin(), flat.end());
    forwardLayers(1, ws);
    NormalizedMVector out;
    for (std::size_t k = 0; k < kNumOutputs; ++k)
        out.m[k] = ws.in[k];
    out.clamp01();
    return out;
}

void
Mlp::predictBatch(std::span<const FeatureVector> features,
                  std::span<NormalizedMVector> out) const
{
    HM_ASSERT(out.size() >= features.size(),
              "predictBatch output span too small: ", out.size(),
              " < ", features.size());
    const std::size_t n = features.size();
    if (n == 0)
        return;
    BatchWorkspace &ws = threadWorkspace();
    ws.in.resize(kNumFeatures * n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto flat = features[i].asArray();
        for (std::size_t k = 0; k < kNumFeatures; ++k)
            ws.in[k * n + i] = flat[k];
    }
    forwardLayers(n, ws);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < kNumOutputs; ++k)
            out[i].m[k] = ws.in[k * n + i];
        out[i].clamp01();
    }
}

void
Mlp::save(std::ostream &os) const
{
    os << "mlp v1 " << hiddenWidth_ << " " << layers_.size() << "\n";
    os << std::setprecision(17);
    for (const Layer &layer : layers_) {
        saveMatrix(os, layer.w);
        os << layer.b.size();
        for (double v : layer.b)
            os << " " << v;
        os << "\n";
    }
}

Mlp
Mlp::load(std::istream &is)
{
    std::string tag;
    std::string version;
    unsigned hidden = 0;
    std::size_t layer_count = 0;
    is >> tag >> version >> hidden >> layer_count;
    if (is.fail() || tag != "mlp" || version != "v1")
        HM_FATAL("Mlp::load: bad header");

    Mlp model(hidden);
    if (model.layers_.size() != layer_count)
        HM_FATAL("Mlp::load: layer count mismatch");
    for (Layer &layer : model.layers_) {
        Matrix w = loadMatrix(is);
        if (w.rows() != layer.w.rows() || w.cols() != layer.w.cols())
            HM_FATAL("Mlp::load: unexpected layer shape");
        layer.w = std::move(w);
        std::size_t bias_count = 0;
        is >> bias_count;
        if (is.fail() || bias_count != layer.b.size())
            HM_FATAL("Mlp::load: bias arity mismatch");
        for (double &v : layer.b) {
            is >> v;
            if (is.fail())
                HM_FATAL("Mlp::load: truncated biases");
        }
    }
    return model;
}

} // namespace heteromap
