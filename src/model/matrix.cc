/**
 * @file
 * Matrix implementation.
 */

#include "model/matrix.hh"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>

#include "util/logging.hh"

namespace heteromap {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    HM_ASSERT(!rows.empty(), "fromRows requires at least one row");
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        HM_ASSERT(rows[r].size() == m.cols_, "ragged rows in fromRows");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m.at(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

double &
Matrix::at(std::size_t r, std::size_t c)
{
    HM_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
              ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Matrix::at(std::size_t r, std::size_t c) const
{
    HM_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
              ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = at(r, c);
    return out;
}

Matrix
Matrix::multiply(const Matrix &other) const
{
    HM_ASSERT(cols_ == other.rows_, "matrix product shape mismatch: ",
              rows_, "x", cols_, " * ", other.rows_, "x", other.cols_);
    Matrix out(rows_, other.cols_);
    // Raw-pointer ikj kernel: same accumulation order (k ascending
    // per output element, zero rows skipped) as the original at()
    // loops, minus the per-element bounds asserts; the c loop is
    // independent lanes the compiler vectorizes.
    const std::size_t n = other.cols_;
    const double *__restrict rhs = other.data_.data();
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *__restrict row = data_.data() + r * cols_;
        double *__restrict dst = out.data_.data() + r * n;
        for (std::size_t k = 0; k < cols_; ++k) {
            const double lhs = row[k];
            if (lhs == 0.0)
                continue;
            const double *__restrict src = rhs + k * n;
            for (std::size_t c = 0; c < n; ++c)
                dst[c] += lhs * src[c];
        }
    }
    return out;
}

std::vector<double>
Matrix::apply(const std::vector<double> &x) const
{
    HM_ASSERT(x.size() == cols_, "matrix-vector shape mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            sum += at(r, c) * x[c];
        out[r] = sum;
    }
    return out;
}

void
Matrix::applyInto(const double *x, double *out) const
{
    const double *__restrict w = data_.data();
    for (std::size_t r = 0; r < rows_; ++r) {
        const double *__restrict row = w + r * cols_;
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            sum += row[c] * x[c];
        out[r] = sum;
    }
}

void
Matrix::forwardBatch(const double *in_t, std::size_t n,
                     double *out_t) const
{
    const double *__restrict w = data_.data();
    const double *__restrict in = in_t;
    double *__restrict out = out_t;
    for (std::size_t r = 0; r < rows_; ++r) {
        double *__restrict z = out + r * n;
        std::fill(z, z + n, 0.0);
        const double *__restrict row = w + r * cols_;
        // k stays the sequential outer loop (bit-exact per sample);
        // the inner j loop is n independent lanes the compiler
        // vectorizes.
        for (std::size_t k = 0; k < cols_; ++k) {
            const double wk = row[k];
            const double *__restrict a = in + k * n;
            for (std::size_t j = 0; j < n; ++j)
                z[j] += wk * a[j];
        }
    }
}

Matrix
Matrix::add(const Matrix &other) const
{
    HM_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
              "matrix addition shape mismatch");
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] + other.data_[i];
    return out;
}

Matrix
Matrix::scaled(double factor) const
{
    Matrix out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] * factor;
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (double x : data_)
        sum += x * x;
    return std::sqrt(sum);
}

void
saveMatrix(std::ostream &os, const Matrix &m)
{
    os << m.rows() << " " << m.cols();
    os << std::setprecision(17);
    for (double v : m.data())
        os << " " << v;
    os << "\n";
}

Matrix
loadMatrix(std::istream &is)
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    is >> rows >> cols;
    if (is.fail())
        HM_FATAL("loadMatrix: malformed header");
    Matrix m(rows, cols);
    for (double &v : m.data()) {
        is >> v;
        if (is.fail())
            HM_FATAL("loadMatrix: truncated data");
    }
    return m;
}

Matrix
choleskySolve(const Matrix &a, const Matrix &b, double ridge)
{
    HM_ASSERT(a.rows() == a.cols(), "choleskySolve requires square A");
    HM_ASSERT(a.rows() == b.rows(), "choleskySolve shape mismatch");
    const std::size_t n = a.rows();

    // Decompose A + ridge*I = L * Lt.
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a.at(i, j) + (i == j ? ridge : 0.0);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l.at(i, k) * l.at(j, k);
            if (i == j) {
                if (sum <= 0.0)
                    HM_FATAL("choleskySolve: matrix not positive "
                             "definite at pivot ", i, " (", sum,
                             "); increase the ridge term");
                l.at(i, i) = std::sqrt(sum);
            } else {
                l.at(i, j) = sum / l.at(j, j);
            }
        }
    }

    // Forward/backward substitution per right-hand-side column.
    Matrix x(n, b.cols());
    std::vector<double> y(n);
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t i = 0; i < n; ++i) {
            double sum = b.at(i, c);
            for (std::size_t k = 0; k < i; ++k)
                sum -= l.at(i, k) * y[k];
            y[i] = sum / l.at(i, i);
        }
        for (std::size_t ii = n; ii > 0; --ii) {
            std::size_t i = ii - 1;
            double sum = y[i];
            for (std::size_t k = i + 1; k < n; ++k)
                sum -= l.at(k, i) * x.at(k, c);
            x.at(i, c) = sum / l.at(i, i);
        }
    }
    return x;
}

} // namespace heteromap
