/**
 * @file
 * Simple linear regression baseline (Table IV "Linear Regression"):
 * one ridge-regularized linear map from the 17 features to the 20
 * outputs. Too weak for the non-linear (B, I) -> M relationships,
 * which is the point of including it.
 */

#ifndef HETEROMAP_MODEL_LINEAR_REGRESSION_HH
#define HETEROMAP_MODEL_LINEAR_REGRESSION_HH

#include <iosfwd>

#include "model/matrix.hh"
#include "model/predictor.hh"

namespace heteromap {

/** Ridge linear regression, closed-form fit. */
class LinearRegression : public Predictor
{
  public:
    /** @param ridge L2 regularization strength. */
    explicit LinearRegression(double ridge = 1e-3) : ridge_(ridge) {}

    std::string name() const override { return "Linear Regression"; }
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

    /** Persist the fitted weights as text. */
    void save(std::ostream &os) const;

    /** Restore a fitted model from the save() format. */
    static LinearRegression load(std::istream &is);

  private:
    double ridge_;
    Matrix weights_; //!< (kNumFeatures + 1) x kNumOutputs, bias last
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_LINEAR_REGRESSION_HH
