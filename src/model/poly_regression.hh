/**
 * @file
 * Multiple non-linear regression (Sec. V-C, Table IV "Multi
 * Regression"): ridge regression over a polynomial feature expansion
 * — per-feature powers up to the configured order (7 in the paper)
 * plus all pairwise products. More capable than the linear baseline,
 * more expensive at inference (the paper's 4.11 ms overhead row).
 */

#ifndef HETEROMAP_MODEL_POLY_REGRESSION_HH
#define HETEROMAP_MODEL_POLY_REGRESSION_HH

#include <iosfwd>

#include "model/matrix.hh"
#include "model/predictor.hh"

namespace heteromap {

/** Polynomial ridge regression of configurable order. */
class PolyRegression : public Predictor
{
  public:
    /**
     * @param order Maximum per-feature power (>= 1).
     * @param ridge L2 regularization strength.
     */
    explicit PolyRegression(unsigned order = 7, double ridge = 0.5);

    std::string name() const override;
    void train(const TrainingSet &data) override;
    NormalizedMVector predict(const FeatureVector &f) const override;

    /** Expanded feature count (exposed for tests). */
    std::size_t expandedSize() const;

    /** Polynomial expansion of one raw feature vector. */
    std::vector<double> expand(const FeatureVector &f) const;

    /** Persist the fitted weights as text. */
    void save(std::ostream &os) const;

    /** Restore a fitted model from the save() format. */
    static PolyRegression load(std::istream &is);

  private:
    unsigned order_;
    double ridge_;
    Matrix weights_; //!< expandedSize() x kNumOutputs
};

} // namespace heteromap

#endif // HETEROMAP_MODEL_POLY_REGRESSION_HH
