/**
 * @file
 * Table-lookup predictor implementation.
 */

#include "model/table_lookup.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace heteromap {

TableLookupPredictor::TableLookupPredictor(unsigned k, double power)
    : k_(std::max(1u, k)), power_(power)
{
}

std::string
TableLookupPredictor::name() const
{
    std::ostringstream oss;
    oss << "Table Lookup (k=" << k_ << ")";
    return oss.str();
}

void
TableLookupPredictor::train(const TrainingSet &data)
{
    HM_ASSERT(!data.empty(), "cannot train on an empty corpus");
    samples_ = data;
}

NormalizedMVector
TableLookupPredictor::predict(const FeatureVector &f) const
{
    HM_ASSERT(!samples_.empty(),
              "TableLookupPredictor::predict before train");
    auto target = f.asArray();

    // Partial selection of the k nearest tuples by squared distance.
    std::vector<std::pair<double, const TrainingSample *>> scored;
    scored.reserve(samples_.size());
    for (const auto &sample : samples_) {
        auto flat = sample.x.asArray();
        double dist = 0.0;
        for (std::size_t i = 0; i < flat.size(); ++i) {
            double d = flat[i] - target[i];
            dist += d * d;
        }
        scored.emplace_back(dist, &sample);
    }
    const std::size_t k =
        std::min<std::size_t>(k_, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const auto &a, const auto &b) {
                          return a.first < b.first;
                      });

    // Exact grid hit: return the stored solution verbatim.
    if (scored.front().first < 1e-12)
        return scored.front().second->y;

    // Inverse-distance-weighted blend of the neighbors.
    NormalizedMVector out;
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        double weight =
            power_ <= 0.0
                ? 1.0
                : 1.0 / std::pow(scored[i].first, power_ / 2.0);
        weight_sum += weight;
        for (std::size_t m = 0; m < kNumOutputs; ++m)
            out.m[m] += weight * scored[i].second->y.m[m];
    }
    for (double &v : out.m)
        v /= weight_sum;
    out.clamp01();
    return out;
}

void
TableLookupPredictor::save(std::ostream &os) const
{
    HM_ASSERT(!samples_.empty(),
              "TableLookupPredictor::save before train");
    os << "table-lookup v1 " << k_ << " " << std::setprecision(17)
       << power_ << " " << samples_.size() << "\n";
    for (const TrainingSample &sample : samples_) {
        for (double v : sample.x.asArray())
            os << v << " ";
        for (double v : sample.y.m)
            os << v << " ";
        os << "\n";
    }
}

TableLookupPredictor
TableLookupPredictor::load(std::istream &is)
{
    std::string tag;
    std::string version;
    unsigned k = 0;
    double power = 0.0;
    std::size_t count = 0;
    is >> tag >> version >> k >> power >> count;
    if (is.fail() || tag != "table-lookup" || version != "v1")
        HM_FATAL("TableLookupPredictor::load: bad header");
    if (count == 0)
        HM_FATAL("TableLookupPredictor::load: empty tuple table");

    TableLookupPredictor model(k, power);
    model.samples_.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
        std::array<double, kNumFeatures> flat{};
        TrainingSample sample;
        for (double &v : flat)
            is >> v;
        for (double &v : sample.y.m)
            is >> v;
        if (is.fail())
            HM_FATAL("TableLookupPredictor::load: truncated tuples");
        sample.x = featureVectorFromArray(flat);
        model.samples_.push_back(std::move(sample));
    }
    return model;
}

} // namespace heteromap
