/**
 * @file
 * hm_serverd: the standalone network prediction server. Publishes a
 * model (a fresh decision tree, or a saveActive() snapshot file),
 * registers the built-in synthetic graph catalogue, and serves the
 * binary RPC protocol (net/wire.hh) on a TCP or Unix endpoint until
 * SIGINT/SIGTERM.
 *
 * Run: ./hm_serverd [--listen tcp:127.0.0.1:7070 | unix:/tmp/hm.sock]
 *                   [--shards N] [--workers W] [--model FILE]
 *                   [--client-rate RPS] [--client-burst N]
 *                   [--max-conns N] [--telemetry-out out.json]
 *
 * The catalogue ships the same three graphs the serving benches use
 * ("mesh", "social", "road"); production deployments would register
 * their own datasets. On shutdown the fleet statusz document is
 * printed so a supervised run always ends with a status snapshot.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "arch/presets.hh"
#include "core/experiment.hh"
#include "graph/generators.hh"
#include "net/server.hh"
#include "serve/model_registry.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

using namespace heteromap;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

struct DaemonOptions {
    std::string listen = "tcp:127.0.0.1:0";
    std::size_t shards = 2;
    std::size_t workers = 2;
    std::string modelFile;
    double clientRate = 1000.0;
    double clientBurst = 100.0;
    std::size_t maxConns = 1024;
};

DaemonOptions
parseArgs(int argc, char **argv)
{
    DaemonOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "hm_serverd: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--listen")
            options.listen = next();
        else if (arg == "--shards")
            options.shards = std::strtoull(next(), nullptr, 10);
        else if (arg == "--workers")
            options.workers = std::strtoull(next(), nullptr, 10);
        else if (arg == "--model")
            options.modelFile = next();
        else if (arg == "--client-rate")
            options.clientRate = std::strtod(next(), nullptr);
        else if (arg == "--client-burst")
            options.clientBurst = std::strtod(next(), nullptr);
        else if (arg == "--max-conns")
            options.maxConns = std::strtoull(next(), nullptr, 10);
        else {
            std::cerr << "hm_serverd: unknown argument " << arg
                      << "\n";
            std::exit(2);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::TelemetryFileWriter telemetry_writer(
        telemetry::consumeTelemetryOutFlag(argc, argv));
    const DaemonOptions daemon = parseArgs(argc, argv);

    auto endpoint = net::parseEndpoint(daemon.listen);
    if (!endpoint.ok()) {
        std::cerr << "hm_serverd: bad --listen: "
                  << endpoint.error().toString() << "\n";
        return 2;
    }

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    serve::ModelRegistry registry(pair, oracle);
    if (!daemon.modelFile.empty()) {
        auto loaded = registry.loadFrom(daemon.modelFile);
        if (!loaded.ok()) {
            std::cerr << "hm_serverd: model load failed: "
                      << loaded.error().toString() << "\n";
            return 2;
        }
    } else {
        registry.publish(PredictorKind::DecisionTree,
                         makePredictor(PredictorKind::DecisionTree));
    }

    net::ServerOptions options;
    options.endpoint = endpoint.value();
    options.shards = daemon.shards;
    options.shard.workers = daemon.workers;
    options.admission.clientRatePerSec = daemon.clientRate;
    options.admission.clientBurst = daemon.clientBurst;
    options.maxConnections = daemon.maxConns;

    net::NetServer server(registry, options);
    server.registerGraph(
        "mesh",
        std::make_shared<const Graph>(generateMesh(1024, 4, 1)));
    server.registerGraph("social",
                         std::make_shared<const Graph>(
                             generatePreferentialAttachment(1024, 4,
                                                            7)));
    server.registerGraph(
        "road",
        std::make_shared<const Graph>(generateRoadGrid(32, 32, 3)));

    auto bound = server.start();
    if (!bound.ok()) {
        std::cerr << "hm_serverd: start failed: "
                  << bound.error().toString() << "\n";
        return 1;
    }
    std::cout << "hm_serverd: serving on "
              << bound.value().toString() << " (" << server.shards()
              << " shards)" << std::endl;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::cout << server.statuszJson() << "\n";
    server.stop();
    return 0;
}
