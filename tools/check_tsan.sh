#!/usr/bin/env bash
# Race-check the parallel subsystems under ThreadSanitizer: the
# offline training sweep (util/thread_pool fan-out) and the graph
# measurement substrate (flat-frontier BFS + stats cache). Run from
# the repo root; uses a separate build tree so the normal build and
# the tier-1 ctest run stay fast.
#
#   tools/check_tsan.sh [build-dir]   (default: build-tsan)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DHETEROMAP_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target test_training test_props
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "Training|Props"
echo "TSan check passed: training sweep + measurement substrate clean"
