#!/usr/bin/env bash
# Race-check the parallel subsystems under ThreadSanitizer: the
# offline training sweep (util/thread_pool fan-out), the graph
# measurement substrate (flat-frontier BFS + stats cache), the
# telemetry layer (lock-free metrics + trace ring buffers), and the
# serving subsystem (MPMC queue, batching workers, RCU model
# hot-swap) together with its fault-tolerance layer (chaos
# injection, watchdog restarts, retrying client, and the fixed-seed
# chaos soak), the forensics layer (per-thread flight-recorder
# rings, drift monitor, SLO tracker), the batched-inference
# equivalence suite (the thread_local MLP batch workspace must stay
# private per worker), and the network serving tier (epoll loop +
# harvester threads + outbox handoff, NetClient connections, the
# multi-tenant admission bucket map, and the fixed-seed loopback
# soak).
# Run from the repo root; uses a separate build tree so the normal
# build and the tier-1 ctest run stay fast.
#
#   tools/check_tsan.sh [-R <ctest-regex>] [build-dir]
#
# -R narrows (or widens) the test selection; the default regex covers
# the parallel subsystems. E.g. race-check only the serving layer
# with: tools/check_tsan.sh -R "Serve|Chaos"

set -euo pipefail
cd "$(dirname "$0")/.."

REGEX="Training|Props|Telemetry|Serve|Chaos|Forensics|BatchInference|Net"
while getopts "R:" opt; do
    case "$opt" in
      R) REGEX="$OPTARG" ;;
      *) echo "usage: $0 [-R <ctest-regex>] [build-dir]" >&2
         exit 2 ;;
    esac
done
shift $((OPTIND - 1))
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DHETEROMAP_SANITIZE=thread
cmake --build "$BUILD_DIR" -j \
    --target test_training test_props test_telemetry telemetry_tour \
             test_serve serving_tour test_chaos bench_serving_chaos \
             test_forensics test_batch_inference test_net \
             bench_net_serving
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$REGEX"
echo "TSan check passed for '$REGEX'"
