#!/usr/bin/env bash
# Performance snapshot of the measure+infer hot path: runs the
# predictor-overhead microbenchmarks (scalar vs batched inference,
# flat vs pointer decision tree), the graph-measurement substrate
# bench (blocked stats sweep, compressed CSR, stats-cache
# amortization), the serving load bench, and the network serving
# soak (on-wire latency percentiles over loopback, p99.9 included),
# then assembles one machine-readable BENCH_10.json of medians with
# python3 stdlib only.
#
# Every bench uses fixed seeds, so two snapshots on the same machine
# differ only by scheduler noise — which the medians are there to
# absorb.
#
#   tools/bench_snapshot.sh [build-dir] [out.json]
#
# Defaults: build-dir=build, out=<build-dir>/BENCH_10.json

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-$BUILD_DIR/BENCH_10.json}"
SERVING_RUNS=3
NET_RUNS=3

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j \
    --target bench_predictor_overhead bench_graph_measurement \
             bench_serving_load bench_net_serving >/dev/null

echo "bench_snapshot: predictor overhead (5 repetitions)..."
"$BUILD_DIR/bench/bench_predictor_overhead" \
    --benchmark_filter='predictorBench|predictorBatchBench|tree' \
    --benchmark_min_time=0.1 \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    > "$BUILD_DIR/bench_snapshot_predictor.json"

echo "bench_snapshot: graph measurement substrate..."
"$BUILD_DIR/bench/bench_graph_measurement" \
    > "$BUILD_DIR/bench_snapshot_graph.txt"

echo "bench_snapshot: serving load ($SERVING_RUNS runs)..."
for i in $(seq 1 "$SERVING_RUNS"); do
    "$BUILD_DIR/bench/bench_serving_load" \
        --requests 150 --workers 2 --clients 4 \
        > "$BUILD_DIR/bench_snapshot_serving_$i.txt"
done

echo "bench_snapshot: net serving soak ($NET_RUNS runs)..."
for i in $(seq 1 "$NET_RUNS"); do
    "$BUILD_DIR/bench/bench_net_serving" \
        --requests 600 --clients 300 --conns 4 --seed 7 \
        > "$BUILD_DIR/bench_snapshot_net_$i.txt"
done

python3 - "$BUILD_DIR" "$OUT" "$SERVING_RUNS" "$NET_RUNS" <<'PY'
import json
import re
import statistics
import sys

build_dir, out_path = sys.argv[1], sys.argv[2]
serving_runs, net_runs = int(sys.argv[3]), int(sys.argv[4])


def split_columns(line):
    return [c.strip() for c in re.split(r"\s{2,}", line.strip()) if c.strip()]


def parse_number(text):
    text = text.rstrip("x").replace(",", "")
    try:
        return float(text)
    except ValueError:
        return None


# --- google-benchmark aggregates -----------------------------------
with open(f"{build_dir}/bench_snapshot_predictor.json") as fh:
    gbench = json.load(fh)

predictor = {}
for row in gbench.get("benchmarks", []):
    if row.get("aggregate_name") != "median":
        continue
    name = row["name"].removesuffix("_median")
    predictor[name] = {
        "cpu_ns_median": row.get("cpu_time"),
        "items_per_second_median": row.get("items_per_second"),
    }


def ips(name):
    entry = predictor.get(name)
    return entry["items_per_second_median"] if entry else None


def ratio(a, b):
    return round(a / b, 3) if a and b else None


derived = {
    # Batched MLP throughput vs the per-sample scalar path
    # (acceptance floor: >= 3.0 at batch >= 8).
    "deep_16_batch8_speedup": ratio(
        ips("predictorBatchBench/deep_16_b8"),
        ips("predictorBench/deep_16")),
    "deep_32_batch8_speedup": ratio(
        ips("predictorBatchBench/deep_32_b8"),
        ips("predictorBench/deep_32")),
    "deep_128_batch8_speedup": ratio(
        ips("predictorBatchBench/deep_128_b8"),
        ips("predictorBench/deep_128")),
    # Flattened vs pointer decision tree on the same random stream.
    "flat_vs_pointer_tree_speedup": ratio(
        ips("treeFlatBench"), ips("treePointerBench")),
    "tree_batch8_vs_pointer_speedup": ratio(
        ips("predictorBatchBench/decision_tree_b8"),
        ips("treePointerBench")),
}

# --- graph measurement tables --------------------------------------
with open(f"{build_dir}/bench_snapshot_graph.txt") as fh:
    graph_lines = fh.read().splitlines()

graph = {"measure": [], "stats_sweep": [], "compressed_csr": []}
section = "measure"
headers = None
for line in graph_lines:
    if line.startswith("degree/stats sweep"):
        section, headers = "stats_sweep", None
        continue
    if line.startswith("delta-encoded compressed"):
        section, headers = "compressed_csr", None
        continue
    if line.startswith("online predict overhead"):
        section = None
        continue
    if section is None or not line.strip() or set(line.strip()) == {"-"}:
        continue
    cols = split_columns(line)
    if headers is None and any(p is None for p in map(parse_number, cols[1:])):
        headers = cols
        continue
    if headers and len(cols) == len(headers):
        row = {headers[0]: cols[0]}
        for key, value in zip(headers[1:], cols[1:]):
            number = parse_number(value)
            row[key] = number if number is not None else value
        graph[section].append(row)
    elif line.startswith("worst cold/cached ratio"):
        graph["worst_cold_cached_ratio"] = parse_number(
            line.split(":")[1].split("x")[0])

for line in graph_lines:
    if line.startswith("worst cold/cached ratio"):
        graph["worst_cold_cached_ratio"] = parse_number(
            line.split(":")[1].strip().split("x")[0])

# --- serving load: median of each numeric metric across runs --------
serving_samples = {}
for i in range(1, serving_runs + 1):
    with open(f"{build_dir}/bench_snapshot_serving_{i}.txt") as fh:
        for line in fh.read().splitlines():
            cols = split_columns(line)
            if len(cols) != 2:
                continue
            number = parse_number(cols[1])
            if number is not None:
                serving_samples.setdefault(cols[0], []).append(number)

serving = {
    key: round(statistics.median(values), 5)
    for key, values in serving_samples.items()
}
serving["runs"] = serving_runs

# --- net serving soak: on-wire percentiles across runs --------------
# Same metric/value table shape as the serving bench; the per-shard
# table and PASS/FAIL lines don't match the 2-column split and fall
# through the filter.
net_samples = {}
for i in range(1, net_runs + 1):
    with open(f"{build_dir}/bench_snapshot_net_{i}.txt") as fh:
        for line in fh.read().splitlines():
            cols = split_columns(line)
            if len(cols) != 2:
                continue
            number = parse_number(cols[1])
            if number is not None:
                net_samples.setdefault(cols[0], []).append(number)

net_serving = {
    key: round(statistics.median(values), 5)
    for key, values in net_samples.items()
}
net_serving["runs"] = net_runs

snapshot = {
    "schema": "heteromap-bench-snapshot-v1",
    "pr": 10,
    "predictor_overhead": predictor,
    "derived": derived,
    "graph_measurement": graph,
    "serving_load": serving,
    "net_serving": net_serving,
}

with open(out_path, "w") as fh:
    json.dump(snapshot, fh, indent=2, sort_keys=True)
    fh.write("\n")

floor_keys = ["deep_16_batch8_speedup", "deep_32_batch8_speedup",
              "deep_128_batch8_speedup"]
for key in floor_keys:
    value = derived.get(key)
    status = "ok" if value and value >= 3.0 else "BELOW 3x FLOOR"
    print(f"  {key}: {value} ({status})")
print(f"  flat_vs_pointer_tree_speedup: "
      f"{derived.get('flat_vs_pointer_tree_speedup')}")
for key in ["throughput_rps", "normal_p50_ms", "normal_p99_ms",
            "normal_p999_ms"]:
    print(f"  net_serving.{key}: {net_serving.get(key)}")
PY

echo "wrote $OUT"
