/**
 * @file
 * hm_statusz: validate and print a PredictionService statusz
 * snapshot (the statuszJson() document a bench or service dumps,
 * e.g. bench_serving_chaos --statusz-out).
 *
 * Usage:
 *   hm_statusz <statusz.json> [--quiet]
 *
 * Exit status: 0 when the file holds one well-formed JSON document
 * with the statusz type marker; 1 on a read, parse, or shape error.
 * CI runs this over the chaos soak's snapshot so a malformed emitter
 * fails the build instead of shipping an unreadable dashboard.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "util/trace.hh"

int
main(int argc, char **argv)
{
    std::string path;
    bool quiet = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: hm_statusz <statusz.json> [--quiet]\n";
            return 0;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "hm_statusz: unexpected argument '" << arg
                      << "'\n";
            return 1;
        }
    }
    if (path.empty()) {
        std::cerr << "usage: hm_statusz <statusz.json> [--quiet]\n";
        return 1;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        std::cerr << "hm_statusz: cannot open " << path << "\n";
        return 1;
    }
    std::ostringstream raw;
    raw << in.rdbuf();
    const std::string document = raw.str();

    std::string error;
    if (!heteromap::telemetry::validateJson(document, &error)) {
        std::cerr << "hm_statusz: " << path << " is not valid JSON: "
                  << error << "\n";
        return 1;
    }
    if (document.find("\"type\":\"statusz\"") == std::string::npos) {
        std::cerr << "hm_statusz: " << path
                  << " parses as JSON but lacks the statusz type "
                     "marker\n";
        return 1;
    }

    if (!quiet)
        std::cout << document << "\n";
    std::cout << "hm_statusz: " << path << " valid ("
              << document.size() << " bytes)\n";
    return 0;
}
