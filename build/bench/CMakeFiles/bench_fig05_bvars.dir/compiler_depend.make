# Empty compiler generated dependencies file for bench_fig05_bvars.
# This may be replaced when dependencies are built.
