file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_bvars.dir/bench_fig05_bvars.cc.o"
  "CMakeFiles/bench_fig05_bvars.dir/bench_fig05_bvars.cc.o.d"
  "bench_fig05_bvars"
  "bench_fig05_bvars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_bvars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
