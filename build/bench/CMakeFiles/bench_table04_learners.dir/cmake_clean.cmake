file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_learners.dir/bench_table04_learners.cc.o"
  "CMakeFiles/bench_table04_learners.dir/bench_table04_learners.cc.o.d"
  "bench_table04_learners"
  "bench_table04_learners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
