# Empty dependencies file for bench_table04_learners.
# This may be replaced when dependencies are built.
