file(REMOVE_RECURSE
  "CMakeFiles/bench_phase_mapping.dir/bench_phase_mapping.cc.o"
  "CMakeFiles/bench_phase_mapping.dir/bench_phase_mapping.cc.o.d"
  "bench_phase_mapping"
  "bench_phase_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
