# Empty dependencies file for bench_phase_mapping.
# This may be replaced when dependencies are built.
