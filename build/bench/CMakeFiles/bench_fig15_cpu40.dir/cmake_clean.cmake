file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cpu40.dir/bench_fig15_cpu40.cc.o"
  "CMakeFiles/bench_fig15_cpu40.dir/bench_fig15_cpu40.cc.o.d"
  "bench_fig15_cpu40"
  "bench_fig15_cpu40.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cpu40.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
