# Empty compiler generated dependencies file for bench_fig15_cpu40.
# This may be replaced when dependencies are built.
