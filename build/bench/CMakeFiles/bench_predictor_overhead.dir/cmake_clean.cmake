file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor_overhead.dir/bench_predictor_overhead.cc.o"
  "CMakeFiles/bench_predictor_overhead.dir/bench_predictor_overhead.cc.o.d"
  "bench_predictor_overhead"
  "bench_predictor_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
