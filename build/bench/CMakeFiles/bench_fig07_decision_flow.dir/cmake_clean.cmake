file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_decision_flow.dir/bench_fig07_decision_flow.cc.o"
  "CMakeFiles/bench_fig07_decision_flow.dir/bench_fig07_decision_flow.cc.o.d"
  "bench_fig07_decision_flow"
  "bench_fig07_decision_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_decision_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
