# Empty compiler generated dependencies file for bench_fig07_decision_flow.
# This may be replaced when dependencies are built.
