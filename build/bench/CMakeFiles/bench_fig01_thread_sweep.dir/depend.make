# Empty dependencies file for bench_fig01_thread_sweep.
# This may be replaced when dependencies are built.
