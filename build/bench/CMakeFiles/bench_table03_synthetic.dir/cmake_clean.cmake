file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_synthetic.dir/bench_table03_synthetic.cc.o"
  "CMakeFiles/bench_table03_synthetic.dir/bench_table03_synthetic.cc.o.d"
  "bench_table03_synthetic"
  "bench_table03_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
