# Empty dependencies file for bench_table03_synthetic.
# This may be replaced when dependencies are built.
