file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scheduler_750.dir/bench_fig11_scheduler_750.cc.o"
  "CMakeFiles/bench_fig11_scheduler_750.dir/bench_fig11_scheduler_750.cc.o.d"
  "bench_fig11_scheduler_750"
  "bench_fig11_scheduler_750.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scheduler_750.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
