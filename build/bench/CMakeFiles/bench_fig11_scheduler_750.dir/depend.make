# Empty dependencies file for bench_fig11_scheduler_750.
# This may be replaced when dependencies are built.
