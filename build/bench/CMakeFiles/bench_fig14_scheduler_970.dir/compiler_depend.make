# Empty compiler generated dependencies file for bench_fig14_scheduler_970.
# This may be replaced when dependencies are built.
