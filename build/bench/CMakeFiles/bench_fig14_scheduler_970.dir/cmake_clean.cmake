file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_scheduler_970.dir/bench_fig14_scheduler_970.cc.o"
  "CMakeFiles/bench_fig14_scheduler_970.dir/bench_fig14_scheduler_970.cc.o.d"
  "bench_fig14_scheduler_970"
  "bench_fig14_scheduler_970.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_scheduler_970.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
