file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_ivars.dir/bench_fig04_ivars.cc.o"
  "CMakeFiles/bench_fig04_ivars.dir/bench_fig04_ivars.cc.o.d"
  "bench_fig04_ivars"
  "bench_fig04_ivars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_ivars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
