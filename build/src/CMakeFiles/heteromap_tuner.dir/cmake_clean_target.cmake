file(REMOVE_RECURSE
  "libheteromap_tuner.a"
)
