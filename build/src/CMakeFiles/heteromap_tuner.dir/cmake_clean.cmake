file(REMOVE_RECURSE
  "CMakeFiles/heteromap_tuner.dir/tuner/annealing.cc.o"
  "CMakeFiles/heteromap_tuner.dir/tuner/annealing.cc.o.d"
  "CMakeFiles/heteromap_tuner.dir/tuner/grid_search.cc.o"
  "CMakeFiles/heteromap_tuner.dir/tuner/grid_search.cc.o.d"
  "CMakeFiles/heteromap_tuner.dir/tuner/random_search.cc.o"
  "CMakeFiles/heteromap_tuner.dir/tuner/random_search.cc.o.d"
  "CMakeFiles/heteromap_tuner.dir/tuner/search_space.cc.o"
  "CMakeFiles/heteromap_tuner.dir/tuner/search_space.cc.o.d"
  "libheteromap_tuner.a"
  "libheteromap_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
