# Empty dependencies file for heteromap_tuner.
# This may be replaced when dependencies are built.
