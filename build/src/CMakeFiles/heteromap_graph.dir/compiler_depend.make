# Empty compiler generated dependencies file for heteromap_graph.
# This may be replaced when dependencies are built.
