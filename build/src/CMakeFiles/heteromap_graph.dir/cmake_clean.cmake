file(REMOVE_RECURSE
  "CMakeFiles/heteromap_graph.dir/graph/builder.cc.o"
  "CMakeFiles/heteromap_graph.dir/graph/builder.cc.o.d"
  "CMakeFiles/heteromap_graph.dir/graph/chunker.cc.o"
  "CMakeFiles/heteromap_graph.dir/graph/chunker.cc.o.d"
  "CMakeFiles/heteromap_graph.dir/graph/datasets.cc.o"
  "CMakeFiles/heteromap_graph.dir/graph/datasets.cc.o.d"
  "CMakeFiles/heteromap_graph.dir/graph/generators.cc.o"
  "CMakeFiles/heteromap_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/heteromap_graph.dir/graph/graph.cc.o"
  "CMakeFiles/heteromap_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/heteromap_graph.dir/graph/io.cc.o"
  "CMakeFiles/heteromap_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/heteromap_graph.dir/graph/props.cc.o"
  "CMakeFiles/heteromap_graph.dir/graph/props.cc.o.d"
  "libheteromap_graph.a"
  "libheteromap_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
