file(REMOVE_RECURSE
  "libheteromap_graph.a"
)
