# Empty dependencies file for heteromap_workloads.
# This may be replaced when dependencies are built.
