
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/betweenness.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/betweenness.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/betweenness.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/comm_detect.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/comm_detect.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/comm_detect.cc.o.d"
  "/root/repo/src/workloads/conn_comp.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/conn_comp.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/conn_comp.cc.o.d"
  "/root/repo/src/workloads/dfs.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/dfs.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/dfs.cc.o.d"
  "/root/repo/src/workloads/pagerank.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/pagerank.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/pagerank.cc.o.d"
  "/root/repo/src/workloads/pagerank_dp.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/pagerank_dp.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/pagerank_dp.cc.o.d"
  "/root/repo/src/workloads/reference.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/reference.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/reference.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/sssp_bf.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/sssp_bf.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/sssp_bf.cc.o.d"
  "/root/repo/src/workloads/sssp_delta.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/sssp_delta.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/sssp_delta.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/tri_count.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/tri_count.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/tri_count.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/heteromap_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/heteromap_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/heteromap_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
