file(REMOVE_RECURSE
  "libheteromap_workloads.a"
)
