file(REMOVE_RECURSE
  "CMakeFiles/heteromap_workloads.dir/workloads/betweenness.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/betweenness.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/bfs.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/bfs.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/comm_detect.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/comm_detect.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/conn_comp.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/conn_comp.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/dfs.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/dfs.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/pagerank.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/pagerank.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/pagerank_dp.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/pagerank_dp.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/reference.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/reference.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/registry.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/sssp_bf.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/sssp_bf.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/sssp_delta.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/sssp_delta.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/synthetic.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/synthetic.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/tri_count.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/tri_count.cc.o.d"
  "CMakeFiles/heteromap_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/heteromap_workloads.dir/workloads/workload.cc.o.d"
  "libheteromap_workloads.a"
  "libheteromap_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
