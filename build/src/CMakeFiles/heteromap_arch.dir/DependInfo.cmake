
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accel_spec.cc" "src/CMakeFiles/heteromap_arch.dir/arch/accel_spec.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/accel_spec.cc.o.d"
  "/root/repo/src/arch/cache_model.cc" "src/CMakeFiles/heteromap_arch.dir/arch/cache_model.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/cache_model.cc.o.d"
  "/root/repo/src/arch/energy_model.cc" "src/CMakeFiles/heteromap_arch.dir/arch/energy_model.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/energy_model.cc.o.d"
  "/root/repo/src/arch/mconfig.cc" "src/CMakeFiles/heteromap_arch.dir/arch/mconfig.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/mconfig.cc.o.d"
  "/root/repo/src/arch/memory_model.cc" "src/CMakeFiles/heteromap_arch.dir/arch/memory_model.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/memory_model.cc.o.d"
  "/root/repo/src/arch/memory_size_model.cc" "src/CMakeFiles/heteromap_arch.dir/arch/memory_size_model.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/memory_size_model.cc.o.d"
  "/root/repo/src/arch/perf_model.cc" "src/CMakeFiles/heteromap_arch.dir/arch/perf_model.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/perf_model.cc.o.d"
  "/root/repo/src/arch/presets.cc" "src/CMakeFiles/heteromap_arch.dir/arch/presets.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/presets.cc.o.d"
  "/root/repo/src/arch/sync_model.cc" "src/CMakeFiles/heteromap_arch.dir/arch/sync_model.cc.o" "gcc" "src/CMakeFiles/heteromap_arch.dir/arch/sync_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/heteromap_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
