# Empty dependencies file for heteromap_arch.
# This may be replaced when dependencies are built.
