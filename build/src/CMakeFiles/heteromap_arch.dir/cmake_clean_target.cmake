file(REMOVE_RECURSE
  "libheteromap_arch.a"
)
