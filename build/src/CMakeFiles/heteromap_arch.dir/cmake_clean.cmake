file(REMOVE_RECURSE
  "CMakeFiles/heteromap_arch.dir/arch/accel_spec.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/accel_spec.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/cache_model.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/cache_model.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/energy_model.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/energy_model.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/mconfig.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/mconfig.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/memory_model.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/memory_model.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/memory_size_model.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/memory_size_model.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/perf_model.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/perf_model.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/presets.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/presets.cc.o.d"
  "CMakeFiles/heteromap_arch.dir/arch/sync_model.cc.o"
  "CMakeFiles/heteromap_arch.dir/arch/sync_model.cc.o.d"
  "libheteromap_arch.a"
  "libheteromap_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
