file(REMOVE_RECURSE
  "CMakeFiles/heteromap_exec.dir/exec/executor.cc.o"
  "CMakeFiles/heteromap_exec.dir/exec/executor.cc.o.d"
  "CMakeFiles/heteromap_exec.dir/exec/profile.cc.o"
  "CMakeFiles/heteromap_exec.dir/exec/profile.cc.o.d"
  "libheteromap_exec.a"
  "libheteromap_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
