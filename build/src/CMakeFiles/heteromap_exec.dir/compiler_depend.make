# Empty compiler generated dependencies file for heteromap_exec.
# This may be replaced when dependencies are built.
