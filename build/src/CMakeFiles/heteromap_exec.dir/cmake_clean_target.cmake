file(REMOVE_RECURSE
  "libheteromap_exec.a"
)
