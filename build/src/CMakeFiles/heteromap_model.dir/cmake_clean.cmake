file(REMOVE_RECURSE
  "CMakeFiles/heteromap_model.dir/model/adaptive_library.cc.o"
  "CMakeFiles/heteromap_model.dir/model/adaptive_library.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/cart.cc.o"
  "CMakeFiles/heteromap_model.dir/model/cart.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/dataset.cc.o"
  "CMakeFiles/heteromap_model.dir/model/dataset.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/decision_tree.cc.o"
  "CMakeFiles/heteromap_model.dir/model/decision_tree.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/linear_regression.cc.o"
  "CMakeFiles/heteromap_model.dir/model/linear_regression.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/matrix.cc.o"
  "CMakeFiles/heteromap_model.dir/model/matrix.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/mlp.cc.o"
  "CMakeFiles/heteromap_model.dir/model/mlp.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/poly_regression.cc.o"
  "CMakeFiles/heteromap_model.dir/model/poly_regression.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/predictor.cc.o"
  "CMakeFiles/heteromap_model.dir/model/predictor.cc.o.d"
  "CMakeFiles/heteromap_model.dir/model/table_lookup.cc.o"
  "CMakeFiles/heteromap_model.dir/model/table_lookup.cc.o.d"
  "libheteromap_model.a"
  "libheteromap_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
