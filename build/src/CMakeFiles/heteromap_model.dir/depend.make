# Empty dependencies file for heteromap_model.
# This may be replaced when dependencies are built.
