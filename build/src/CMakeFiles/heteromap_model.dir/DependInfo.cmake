
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/adaptive_library.cc" "src/CMakeFiles/heteromap_model.dir/model/adaptive_library.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/adaptive_library.cc.o.d"
  "/root/repo/src/model/cart.cc" "src/CMakeFiles/heteromap_model.dir/model/cart.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/cart.cc.o.d"
  "/root/repo/src/model/dataset.cc" "src/CMakeFiles/heteromap_model.dir/model/dataset.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/dataset.cc.o.d"
  "/root/repo/src/model/decision_tree.cc" "src/CMakeFiles/heteromap_model.dir/model/decision_tree.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/decision_tree.cc.o.d"
  "/root/repo/src/model/linear_regression.cc" "src/CMakeFiles/heteromap_model.dir/model/linear_regression.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/linear_regression.cc.o.d"
  "/root/repo/src/model/matrix.cc" "src/CMakeFiles/heteromap_model.dir/model/matrix.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/matrix.cc.o.d"
  "/root/repo/src/model/mlp.cc" "src/CMakeFiles/heteromap_model.dir/model/mlp.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/mlp.cc.o.d"
  "/root/repo/src/model/poly_regression.cc" "src/CMakeFiles/heteromap_model.dir/model/poly_regression.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/poly_regression.cc.o.d"
  "/root/repo/src/model/predictor.cc" "src/CMakeFiles/heteromap_model.dir/model/predictor.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/predictor.cc.o.d"
  "/root/repo/src/model/table_lookup.cc" "src/CMakeFiles/heteromap_model.dir/model/table_lookup.cc.o" "gcc" "src/CMakeFiles/heteromap_model.dir/model/table_lookup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/heteromap_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
