file(REMOVE_RECURSE
  "libheteromap_model.a"
)
