file(REMOVE_RECURSE
  "CMakeFiles/heteromap_util.dir/util/logging.cc.o"
  "CMakeFiles/heteromap_util.dir/util/logging.cc.o.d"
  "CMakeFiles/heteromap_util.dir/util/rng.cc.o"
  "CMakeFiles/heteromap_util.dir/util/rng.cc.o.d"
  "CMakeFiles/heteromap_util.dir/util/stats.cc.o"
  "CMakeFiles/heteromap_util.dir/util/stats.cc.o.d"
  "CMakeFiles/heteromap_util.dir/util/table.cc.o"
  "CMakeFiles/heteromap_util.dir/util/table.cc.o.d"
  "CMakeFiles/heteromap_util.dir/util/timer.cc.o"
  "CMakeFiles/heteromap_util.dir/util/timer.cc.o.d"
  "libheteromap_util.a"
  "libheteromap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
