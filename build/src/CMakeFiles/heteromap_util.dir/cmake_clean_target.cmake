file(REMOVE_RECURSE
  "libheteromap_util.a"
)
