# Empty dependencies file for heteromap_util.
# This may be replaced when dependencies are built.
