# Empty compiler generated dependencies file for heteromap_core.
# This may be replaced when dependencies are built.
