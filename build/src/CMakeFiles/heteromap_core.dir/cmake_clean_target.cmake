file(REMOVE_RECURSE
  "libheteromap_core.a"
)
