file(REMOVE_RECURSE
  "CMakeFiles/heteromap_core.dir/core/database.cc.o"
  "CMakeFiles/heteromap_core.dir/core/database.cc.o.d"
  "CMakeFiles/heteromap_core.dir/core/experiment.cc.o"
  "CMakeFiles/heteromap_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/heteromap_core.dir/core/heteromap.cc.o"
  "CMakeFiles/heteromap_core.dir/core/heteromap.cc.o.d"
  "CMakeFiles/heteromap_core.dir/core/oracle.cc.o"
  "CMakeFiles/heteromap_core.dir/core/oracle.cc.o.d"
  "CMakeFiles/heteromap_core.dir/core/phase_mapping.cc.o"
  "CMakeFiles/heteromap_core.dir/core/phase_mapping.cc.o.d"
  "CMakeFiles/heteromap_core.dir/core/training.cc.o"
  "CMakeFiles/heteromap_core.dir/core/training.cc.o.d"
  "libheteromap_core.a"
  "libheteromap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
