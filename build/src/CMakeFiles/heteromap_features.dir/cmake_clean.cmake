file(REMOVE_RECURSE
  "CMakeFiles/heteromap_features.dir/features/bvars.cc.o"
  "CMakeFiles/heteromap_features.dir/features/bvars.cc.o.d"
  "CMakeFiles/heteromap_features.dir/features/feature_vector.cc.o"
  "CMakeFiles/heteromap_features.dir/features/feature_vector.cc.o.d"
  "CMakeFiles/heteromap_features.dir/features/ivars.cc.o"
  "CMakeFiles/heteromap_features.dir/features/ivars.cc.o.d"
  "libheteromap_features.a"
  "libheteromap_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heteromap_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
