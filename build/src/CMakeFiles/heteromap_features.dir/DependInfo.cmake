
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/bvars.cc" "src/CMakeFiles/heteromap_features.dir/features/bvars.cc.o" "gcc" "src/CMakeFiles/heteromap_features.dir/features/bvars.cc.o.d"
  "/root/repo/src/features/feature_vector.cc" "src/CMakeFiles/heteromap_features.dir/features/feature_vector.cc.o" "gcc" "src/CMakeFiles/heteromap_features.dir/features/feature_vector.cc.o.d"
  "/root/repo/src/features/ivars.cc" "src/CMakeFiles/heteromap_features.dir/features/ivars.cc.o" "gcc" "src/CMakeFiles/heteromap_features.dir/features/ivars.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/heteromap_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/heteromap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
