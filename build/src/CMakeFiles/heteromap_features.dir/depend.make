# Empty dependencies file for heteromap_features.
# This may be replaced when dependencies are built.
