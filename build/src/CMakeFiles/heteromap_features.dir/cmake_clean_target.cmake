file(REMOVE_RECURSE
  "libheteromap_features.a"
)
