# Empty compiler generated dependencies file for test_phase_mapping.
# This may be replaced when dependencies are built.
