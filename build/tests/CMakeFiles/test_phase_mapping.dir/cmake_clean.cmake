file(REMOVE_RECURSE
  "CMakeFiles/test_phase_mapping.dir/test_phase_mapping.cc.o"
  "CMakeFiles/test_phase_mapping.dir/test_phase_mapping.cc.o.d"
  "test_phase_mapping"
  "test_phase_mapping.pdb"
  "test_phase_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
