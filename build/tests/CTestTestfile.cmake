# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_chunker[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_synthetic[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_mlp[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_betweenness[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_phase_mapping[1]_include.cmake")
