/**
 * @file
 * Serving tour: the end-to-end acceptance check for the serving
 * subsystem (src/serve/), run under CTest as ServeTourHotSwap.
 *
 * Phase A (Block admission): two closed-loop clients drive a
 * two-worker PredictionService while the main thread retrains a
 * learner in the background — distilling the Sec. IV decision-tree
 * heuristic into the Adaptive.Library baseline — and hot-swaps it
 * into the ModelRegistry mid-traffic. The tour asserts that the swap
 * is observable purely through the model epoch stamped into the
 * responses (1 before, 2 after, never anything else, monotone per
 * client) and that backpressure dropped nothing: every submitted
 * request completed Ok.
 *
 * Phase B (Reject admission): a burst floods a single-worker,
 * capacity-1 service and the tour asserts the load shedding is
 * accounted exactly — Ok responses + Shed responses = submissions,
 * and the "serve.shed" telemetry counter moved by precisely the
 * number of Shed responses.
 *
 * Run: ./serving_tour [--telemetry-out serving_tour.json]
 */

#include <atomic>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/presets.hh"
#include "core/experiment.hh"
#include "features/ivars.hh"
#include "graph/datasets.hh"
#include "graph/generators.hh"
#include "serve/model_registry.hh"
#include "serve/prediction_service.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "workloads/registry.hh"

using namespace heteromap;
using namespace heteromap::serve;

namespace {

int
fail(const std::string &why)
{
    std::cerr << "serving_tour: FAILED: " << why << "\n";
    return 1;
}

/**
 * A retraining corpus without a tuner sweep: label every
 * (workload, input) feature vector with the decision-tree heuristic's
 * own output, so the swapped-in learner imitates the heuristic.
 */
TrainingSet
distillationCorpus()
{
    auto teacher = makePredictor(PredictorKind::DecisionTree);
    TrainingSet corpus;
    for (const auto &name : workloadNames()) {
        auto workload = makeWorkload(name);
        for (const char *input : {"CA", "CO", "LJ"}) {
            TrainingSample sample;
            sample.x.b = workload->bVariables();
            sample.x.i = extractIVariables(datasetByShortName(input));
            sample.y = teacher->predict(sample.x);
            corpus.push_back(std::move(sample));
        }
    }
    return corpus;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);
    telemetry::TelemetryFileWriter telemetry_writer(
        telemetry::consumeTelemetryOutFlag(argc, argv));

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    ModelRegistry registry(pair, oracle);
    registry.publish(PredictorKind::DecisionTree,
                     makePredictor(PredictorKind::DecisionTree));

    auto pagerank =
        std::shared_ptr<const Workload>(makeWorkload("PR"));
    auto bfs = std::shared_ptr<const Workload>(makeWorkload("BFS"));
    auto mesh = std::make_shared<const Graph>(generateMesh(512, 4, 1));
    auto social = std::make_shared<const Graph>(
        generatePreferentialAttachment(512, 4, 7));

    // --- Phase A: hot-swap under closed-loop traffic (Block). -----
    ServiceOptions options;
    options.workers = 2;
    options.admission = AdmissionPolicy::Block;
    PredictionService service(registry, options);
    if (service.workers() != 2)
        return fail("expected 2 serving workers");

    constexpr int kClients = 2;
    constexpr int kMinRequestsEach = 4;
    constexpr int kMaxRequestsEach = 20000; // runaway guard
    std::atomic<uint64_t> phase_a_responses{0};
    std::atomic<bool> client_failed{false};
    std::mutex epochs_mutex;
    std::vector<uint64_t> epochs_seen;

    auto client = [&](int which) {
        uint64_t last_epoch = 0;
        for (int i = 0; i < kMaxRequestsEach; ++i) {
            ServeRequest request;
            request.workload = (which == 0) ? pagerank : bfs;
            request.graph = (i % 2 == 0) ? mesh : social;
            request.inputName = (i % 2 == 0) ? "mesh" : "social";
            ServeResponse response =
                service.submit(std::move(request)).get();
            phase_a_responses.fetch_add(1);
            if (response.status != ServeStatus::Ok ||
                response.modelEpoch < last_epoch) {
                client_failed.store(true);
                return;
            }
            last_epoch = response.modelEpoch;
            {
                std::lock_guard<std::mutex> lock(epochs_mutex);
                epochs_seen.push_back(response.modelEpoch);
            }
            // Run until the hot-swap is observed (and a little past
            // it), so the swap demonstrably lands mid-traffic.
            if (response.modelEpoch >= 2 && i + 1 >= kMinRequestsEach)
                return;
        }
        client_failed.store(true); // never saw the swap
    };

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back(client, c);

    // Let traffic establish itself on epoch 1...
    while (phase_a_responses.load() <
               static_cast<uint64_t>(kClients * kMinRequestsEach) &&
           !client_failed.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // ...then retrain in the background and swap, no restart, no
    // pause: in-flight batches finish on the model they pinned.
    const uint64_t new_epoch = registry.publishTrained(
        PredictorKind::AdaptiveLibrary, distillationCorpus());

    for (auto &thread : clients)
        thread.join();
    service.close();

    if (client_failed.load())
        return fail("a client saw a drop, a non-Ok response, or a "
                    "backwards epoch");
    if (new_epoch != 2)
        return fail("expected the retrain to publish epoch 2");
    bool saw_old = false, saw_new = false;
    for (uint64_t epoch : epochs_seen) {
        if (epoch == 1)
            saw_old = true;
        else if (epoch == 2)
            saw_new = true;
        else
            return fail("response stamped with an impossible epoch");
    }
    if (!saw_old || !saw_new)
        return fail("the hot-swap was not observable in the "
                    "response epochs");
    if (service.shed() != 0)
        return fail("Block admission shed a request");
    if (service.completed() != service.submitted())
        return fail("a request went unanswered under Block "
                    "admission");

    std::cout << "phase A: " << service.completed() << " requests, "
              << registry.current()->predictorName
              << " hot-swapped in at epoch " << new_epoch
              << " mid-traffic, 0 dropped\n";

    // --- Phase B: exact shed accounting under Reject. -------------
    const uint64_t shed_counter_before =
        telemetry::registry().counter("serve.shed").value();

    ServiceOptions reject_options;
    reject_options.workers = 1;
    reject_options.queueCapacity = 1;
    reject_options.maxBatch = 1;
    reject_options.admission = AdmissionPolicy::Reject;
    PredictionService overloaded(registry, reject_options);

    constexpr int kBurst = 64;
    std::vector<std::future<ServeResponse>> futures;
    futures.reserve(kBurst);
    for (int i = 0; i < kBurst; ++i) {
        ServeRequest request;
        request.workload = pagerank;
        request.graph = mesh;
        request.inputName = "mesh";
        futures.push_back(overloaded.submit(std::move(request)));
    }

    uint64_t ok = 0, shed = 0;
    for (auto &future : futures) {
        ServeResponse response = future.get();
        if (response.status == ServeStatus::Ok)
            ++ok;
        else if (response.status == ServeStatus::Shed &&
                 response.shedReason == ShedReason::QueueFull)
            ++shed;
        else
            return fail("unexpected response status in the burst");
    }
    overloaded.close();

    const uint64_t shed_counter_delta =
        telemetry::registry().counter("serve.shed").value() -
        shed_counter_before;
    if (ok + shed != kBurst)
        return fail("burst responses do not add up");
    if (shed == 0)
        return fail("the burst should overload a capacity-1 queue");
    if (overloaded.shed() != shed)
        return fail("service shed() disagrees with the responses");
    if (shed_counter_delta != shed)
        return fail("serve.shed counter is not exact: moved by " +
                    std::to_string(shed_counter_delta) + " for " +
                    std::to_string(shed) + " shed responses");
    if (overloaded.completed() != ok)
        return fail("completed() disagrees with the Ok responses");

    std::cout << "phase B: burst of " << kBurst << " -> " << ok
              << " served, " << shed
              << " shed, serve.shed moved by exactly "
              << shed_counter_delta << "\n";
    std::cout << "serving_tour: OK\n";
    return 0;
}
