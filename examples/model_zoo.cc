/**
 * @file
 * Model zoo: trains every predictor family on one synthetic corpus,
 * compares their fit and inference latency, and demonstrates
 * persisting a trained model to disk and reloading it.
 *
 * Run: ./model_zoo
 */

#include <fstream>
#include <iostream>
#include <cmath>
#include <memory>

#include "core/experiment.hh"
#include "core/training.hh"
#include "model/cart.hh"
#include "model/dataset.hh"
#include "model/mlp.hh"
#include "model/table_lookup.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace heteromap;

int
main()
{
    setLogVerbose(false);
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());

    TrainingOptions options;
    options.syntheticBenchmarks = 16;
    options.syntheticIterations = 1;
    TrainingPipeline pipeline(pair, oracle, options);
    TrainingSet corpus = pipeline.run();
    auto [train, valid] = splitTrainingSet(corpus, 0.8);
    std::cout << "corpus: " << train.size() << " train / "
              << valid.size() << " validation samples\n\n";

    std::vector<std::unique_ptr<Predictor>> zoo;
    for (PredictorKind kind : allPredictorKinds())
        zoo.push_back(makePredictor(kind));
    zoo.push_back(std::make_unique<TableLookupPredictor>(3));
    zoo.push_back(std::make_unique<CartTree>());
    zoo.push_back(std::make_unique<CartForest>(16));

    TextTable table({"model", "train MSE", "valid MSE",
                     "train time (s)", "predict (us)"});
    for (auto &model : zoo) {
        Timer timer;
        timer.start();
        model->train(train);
        double fit_seconds = timer.elapsedSeconds();

        timer.start();
        for (int i = 0; i < 200; ++i)
            model->predict(valid[i % valid.size()].x);
        double predict_us = timer.elapsedMicros() / 200.0;

        table.addRow({model->name(),
                      formatNumber(meanSquaredError(*model, train), 4),
                      formatNumber(meanSquaredError(*model, valid), 4),
                      formatNumber(fit_seconds, 2),
                      formatNumber(predict_us, 1)});
    }
    table.print(std::cout);

    // Persist a trained deep model and reload it.
    MlpOptions mlp_options;
    mlp_options.epochs = 60;
    Mlp deep(32, mlp_options);
    deep.train(train);
    {
        std::ofstream out("deep32.model");
        deep.save(out);
    }
    std::ifstream in("deep32.model");
    Mlp restored = Mlp::load(in);
    std::cout << "\nsaved Deep.32 to deep32.model and reloaded it; "
              << "round-trip prediction delta: "
              << formatNumber(
                     std::fabs(deep.predict(valid[0].x).m[0] -
                               restored.predict(valid[0].x).m[0]),
                     12)
              << "\n";
    return 0;
}
