/**
 * @file
 * Full offline-train / online-deploy walk-through (Fig. 8):
 *
 *  1. Generate synthetic benchmarks (Fig. 9) and graphs (Table III).
 *  2. Auto-tune each combination to its best M configuration and
 *     record the (B, I) -> M tuples in the profiler database.
 *  3. Train the Deep.128 learner on the corpus, save the database.
 *  4. Deploy real benchmark-input combinations online and compare
 *     against the tuned ideal.
 *
 * Run: ./train_and_deploy
 */

#include <fstream>
#include <iostream>

#include "core/experiment.hh"
#include "core/training.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main()
{
    setLogVerbose(false);
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());

    // --- Offline phase -------------------------------------------
    TrainingOptions options;
    options.syntheticBenchmarks = 24;
    options.syntheticIterations = 1;
    options.threads = 0; // fan the sweep across all hardware threads
    TrainingPipeline pipeline(pair, oracle, options);

    Timer timer;
    timer.start();
    TrainingSet corpus = pipeline.run();
    std::cout << "offline: " << corpus.size() << " labelled samples, "
              << pipeline.evaluations() << " tuner evaluations in "
              << formatNumber(timer.elapsedSeconds(), 1) << " s\n";

    // Persist the profiler database like the paper's CPU-resident
    // store (Sec. V "Training").
    {
        std::ofstream db_file("heteromap_profile.db");
        pipeline.database().save(db_file);
    }
    std::cout << "profiler database: " << pipeline.database().size()
              << " (B,I)->M tuples saved to heteromap_profile.db\n";

    timer.start();
    HeteroMap framework(pair, makePredictor(PredictorKind::Deep128),
                        oracle);
    framework.trainOffline(corpus);
    std::cout << "Deep.128 trained in "
              << formatNumber(timer.elapsedSeconds(), 1) << " s\n\n";

    // --- Online phase --------------------------------------------
    const std::pair<const char *, const char *> combos[] = {
        {"SSSP-BF", "CAGE"}, {"SSSP-Delta", "CA"}, {"PR", "LJ"},
        {"TRI", "CO"},       {"BFS", "FB"},        {"CONN", "CAGE"},
    };
    TextTable table({"combination", "choice", "HeteroMap (ms)",
                     "ideal (ms)", "accuracy", "overhead (ms)"});
    for (const auto &[w, d] : combos) {
        auto workload = makeWorkload(w);
        BenchmarkCase bench =
            makeCase(*workload, datasetByShortName(d));
        // Warm the predictor once; the first call pays one-time
        // allocation costs that are not steady-state overhead.
        framework.deploy(bench);
        Deployment deployment = framework.deploy(bench);
        CaseBaselines base = computeBaselines(bench, pair, oracle,
                                              GridGranularity::Coarse);
        // Real inference milliseconds are charged at the case's
        // nominal time scale (see core/experiment.hh).
        double total = deployedSeconds(deployment, bench);
        table.addRow({
            bench.label(),
            acceleratorKindName(deployment.config.accelerator),
            formatNumber(total * 1e3, 4),
            formatNumber(base.idealSeconds * 1e3, 4),
            formatPercent(accuracyVsIdeal(total, base.idealSeconds),
                          1),
            formatNumber(deployment.overheadMs, 4),
        });
    }
    table.print(std::cout);
    return 0;
}
