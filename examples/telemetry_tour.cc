/**
 * @file
 * Telemetry tour: a predict + supervised-deploy run that produces
 * (a) a metrics-registry snapshot whose predict-stage histograms sum
 * to the reported overheadMs, and (b) a Chrome trace_event JSON file
 * loadable in about:tracing / Perfetto.
 *
 * The tour is also the executable acceptance check for the telemetry
 * layer: it validates its own trace export with the format validator
 * and verifies the stage accounting, exiting nonzero on any
 * violation (it runs under CTest as TelemetryTourEmitsValidTrace).
 *
 * Run: ./telemetry_tour [--telemetry-out trace.json]
 */

#include <cmath>
#include <fstream>
#include <iostream>

#include "core/heteromap.hh"
#include "core/supervisor.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/trace.hh"
#include "workloads/registry.hh"

using namespace heteromap;

namespace {

int
fail(const std::string &why)
{
    std::cerr << "telemetry_tour: FAILED: " << why << "\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);
    std::string out_path =
        telemetry::consumeTelemetryOutFlag(argc, argv);
    if (out_path.empty())
        out_path = "telemetry_tour_trace.json";

    if (!telemetry::enabled()) {
        // An OFF build has nothing to tour; succeed vacuously so the
        // CTest entry stays green in every configuration.
        std::cout << "telemetry_tour: built with "
                     "HETEROMAP_TELEMETRY=OFF, nothing to record\n";
        return 0;
    }

    // Start from a clean slate so the numbers below are this run's.
    telemetry::registry().reset();
    telemetry::clearTrace();

    // --- The online path: predict twice (cold, then cache-warm). ---
    Graph graph = generateRmat(/*scale=*/12, /*edge_factor=*/10.0,
                               /*seed=*/42);
    auto workload = makeWorkload("PR");
    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);

    Deployment cold = framework.predict(*workload, graph, "rmat12");
    Deployment warm = framework.predict(*workload, graph, "rmat12");
    const double total_overhead_ms = cold.overheadMs + warm.overheadMs;

    std::cout << "cold predict overhead: " << cold.overheadMs
              << " ms\nwarm predict overhead: " << warm.overheadMs
              << " ms (graph stats served from cache)\n\n";

    // --- Check: stage histograms partition overheadMs exactly. ---
    {
        telemetry::MetricsSnapshot snap =
            telemetry::registry().snapshot();
        double stage_sum_ms = 0.0;
        for (const char *stage :
             {"predict.stage.measure_ms", "predict.stage.featurize_ms",
              "predict.stage.infer_ms"}) {
            auto found = snap.histograms.find(stage);
            if (found == snap.histograms.end())
                return fail(std::string("missing stage histogram ") +
                            stage);
            if (found->second.count != 2)
                return fail(std::string(stage) +
                            " did not record both predicts");
            stage_sum_ms += found->second.sum;
        }
        const double drift =
            std::abs(stage_sum_ms - total_overhead_ms) /
            total_overhead_ms;
        std::cout << "stage sum " << stage_sum_ms << " ms vs overhead "
                  << total_overhead_ms << " ms (drift "
                  << drift * 100.0 << "%)\n";
        if (drift > 0.01)
            return fail("stage sums drift more than 1% from "
                        "overheadMs");
    }

    // --- A supervised deployment rides on the same telemetry. ---
    GraphStats stats = globalStatsCache().measure(graph);
    BenchmarkCase bench = makeCase(*workload, graph, "rmat12", stats);
    Supervisor supervisor(framework);
    DeploymentOutcome outcome = supervisor.deploy(bench);
    if (!outcome.completed)
        return fail("supervised deployment did not complete");

    // --- The metrics table every bench can now print. ---
    telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
    std::cout << "\nmetrics snapshot:\n" << snap.toText() << "\n";
    if (snap.counters.at("predict.calls") != 2 ||
        snap.counters.at("supervisor.deployments") != 1)
        return fail("unexpected call counters in the snapshot");
    if (snap.counters.at("stats_cache.hits") == 0)
        return fail("warm predict did not hit the stats cache");

    // --- Export, validate, and write the Chrome trace. ---
    const std::string json = telemetry::combinedTelemetryJson();
    std::string error;
    std::size_t num_events = 0;
    if (!telemetry::validateChromeTrace(json, &error, &num_events))
        return fail("trace validation: " + error);

    std::vector<telemetry::ParsedTraceEvent> events =
        telemetry::parseChromeTrace(json, &error);
    auto count_named = [&](const std::string &name) {
        std::size_t n = 0;
        for (const auto &event : events)
            n += event.name == name ? 1 : 0;
        return n;
    };
    if (count_named("predict") != 2 ||
        count_named("predict.infer") != 3 || // 2 predicts + supervisor
        count_named("supervise.deploy") != 1)
        return fail("exported trace lacks the expected spans");

    std::ofstream file(out_path);
    file << json << "\n";
    if (!file.good())
        return fail("cannot write " + out_path);

    std::cout << "wrote " << num_events << " trace events to "
              << out_path
              << " (load it in about:tracing or ui.perfetto.dev)\n"
              << "telemetry_tour: all checks passed\n";
    return 0;
}
