/**
 * @file
 * Accelerator explorer: sweeps the intra-accelerator choice space for
 * one benchmark-input combination and prints the performance surface
 * — the manual view a performance engineer would use before trusting
 * the predictor. Shows thread-count U-shapes, schedule-policy
 * effects, and the GPU work-group sweet spot.
 *
 * Run: ./accelerator_explorer [workload] [dataset]
 *      e.g. ./accelerator_explorer SSSP-Delta CA
 */

#include <iostream>

#include "core/experiment.hh"
#include "graph/datasets.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main(int argc, char **argv)
{
    setLogVerbose(false);
    const std::string workload_name = argc > 1 ? argv[1] : "PR";
    const std::string dataset_name = argc > 2 ? argv[2] : "LJ";

    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    auto workload = makeWorkload(workload_name);
    BenchmarkCase bench =
        makeCase(*workload, datasetByShortName(dataset_name));
    std::cout << "exploring " << bench.label() << " on "
              << pair.name() << "\n\n";

    // Multicore surface: cores x schedule policy.
    std::cout << "multicore (ms): cores x schedule "
                 "(tpc=max, simd=max)\n";
    TextTable mc_table({"cores", "static", "dynamic", "guided"});
    for (unsigned cores : {1u, 4u, 16u, 32u, 61u}) {
        std::vector<std::string> row{std::to_string(cores)};
        for (SchedulePolicy policy :
             {SchedulePolicy::Static, SchedulePolicy::Dynamic,
              SchedulePolicy::Guided}) {
            MConfig c;
            c.accelerator = AcceleratorKind::Multicore;
            c.cores = cores;
            c.threadsPerCore = pair.multicore.threadsPerCore;
            c.simdWidth = pair.multicore.simdWidth;
            c.schedule = policy;
            c.chunkSize = policy == SchedulePolicy::Static ? 0 : 16;
            row.push_back(formatNumber(
                oracle.seconds(bench, pair, c) * 1e3, 4));
        }
        mc_table.addRow(row);
    }
    mc_table.print(std::cout);

    // GPU surface: global x local threads.
    std::cout << "\nGPU (ms): global x local threads\n";
    TextTable gpu_table({"global\\local", "32", "128", "512", "1024"});
    for (unsigned global : {256u, 1024u, 4096u, 10240u}) {
        std::vector<std::string> row{std::to_string(global)};
        for (unsigned local : {32u, 128u, 512u, 1024u}) {
            MConfig c;
            c.accelerator = AcceleratorKind::Gpu;
            c.gpuGlobalThreads = global;
            c.gpuLocalThreads = local;
            row.push_back(formatNumber(
                oracle.seconds(bench, pair, c) * 1e3, 4));
        }
        gpu_table.addRow(row);
    }
    gpu_table.print(std::cout);

    // The tuned reference points.
    CaseBaselines base = computeBaselines(bench, pair, oracle);
    std::cout << "\ntuned best:\n  GPU:       "
              << formatNumber(base.gpuSeconds * 1e3, 4) << " ms ("
              << base.gpuBest.toString() << ")\n  multicore: "
              << formatNumber(base.multicoreSeconds * 1e3, 4)
              << " ms (" << base.multicoreBest.toString() << ")\n";
    return 0;
}
