/**
 * @file
 * Fault-injection walkthrough: a supervised deployment loop surviving
 * an unhealthy multi-accelerator system.
 *
 *  1. Build the decision-tree HeteroMap runtime on the primary pair.
 *  2. Script a fault schedule: the GPU drops out for deployments
 *     [3, 6), the multicore thermally throttles from deployment 5
 *     with a 3-deployment ramp, and a transient 2 ms stall hits the
 *     GPU at deployment 8.
 *  3. Run 12 supervised deployments of PR-LJ and print, per
 *     deployment, the faults seen, the fallback path taken, and the
 *     predicted vs. observed completion time.
 *
 * Every deployment completes — outages and throttles degrade the
 * configuration instead of tearing the process down.
 *
 * Run: ./fault_drill
 */

#include <iostream>
#include <sstream>

#include "core/experiment.hh"
#include "core/supervisor.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main()
{
    setLogVerbose(false);
    Oracle oracle;
    AcceleratorPair pair = pinnedPair(primaryPair());
    HeteroMap framework(pair,
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);

    auto workload = makeWorkload("PR");
    BenchmarkCase bench = makeCase(*workload, datasetByShortName("LJ"));
    const AcceleratorKind predicted =
        framework.deploy(bench).config.accelerator;
    std::cout << "predictor chooses " << acceleratorKindName(predicted)
              << " for " << bench.label() << " on a healthy "
              << pair.name() << "\n\n";

    // --- Script the drill ----------------------------------------
    FaultSchedule schedule;

    FaultSpec outage;
    outage.kind = FaultKind::AcceleratorUnavailable;
    outage.target = predicted;
    outage.startDeployment = 3;
    outage.endDeployment = 6;
    schedule.add(outage);

    FaultSpec throttle;
    throttle.kind = FaultKind::ThermalThrottle;
    throttle.target = AcceleratorKind::Multicore;
    throttle.startDeployment = 5;
    throttle.severity = 0.35;
    throttle.rampDeployments = 3;
    schedule.add(throttle);

    FaultSpec stall;
    stall.kind = FaultKind::TransientStall;
    stall.target = predicted;
    stall.startDeployment = 8;
    stall.endDeployment = 9;
    stall.stallSeconds = 2e-3;
    schedule.add(stall);

    std::cout << "fault schedule:\n";
    for (const auto &spec : schedule.faults())
        std::cout << "  " << spec.toString() << "\n";
    std::cout << "\n";

    // --- Run the supervised loop ---------------------------------
    SupervisorOptions options;
    options.mispredictTolerance = 0.25;
    Supervisor supervisor(framework, FaultInjector(schedule), options);

    TextTable table({"deploy", "status", "accel", "fallback path",
                     "faults", "predicted (ms)", "observed (ms)"});
    unsigned fallbacks = 0;
    for (int d = 0; d < 12; ++d) {
        DeploymentOutcome outcome = supervisor.deploy(bench);
        fallbacks += outcome.fallbackPath.empty() ? 0 : 1;

        std::ostringstream path;
        if (outcome.fallbackPath.empty()) {
            path << "-";
        } else {
            for (std::size_t i = 0; i < outcome.fallbackPath.size();
                 ++i) {
                if (i > 0)
                    path << " > ";
                path << fallbackActionName(outcome.fallbackPath[i]);
            }
        }
        const DeploymentAttempt &last = outcome.attempts.back();
        table.addRow({
            std::to_string(outcome.deploymentIndex),
            outcome.completed
                ? (outcome.withinTolerance ? "ok" : "degraded")
                : "failed",
            acceleratorKindName(outcome.deployment.config.accelerator),
            path.str(),
            std::to_string(outcome.faultsSeen),
            formatNumber(last.predictedSeconds * 1e3, 4),
            formatNumber(last.observedSeconds * 1e3, 4),
        });
    }
    table.print(std::cout);
    std::cout << "\n" << fallbacks
              << "/12 deployments needed the degradation ladder; all "
                 "completed without a panic.\n";
    return 0;
}
