/**
 * @file
 * Quickstart: the smallest end-to-end HeteroMap flow.
 *
 *  1. Load (here: generate) an input graph.
 *  2. Pick a benchmark and discretize its (B, I) features.
 *  3. Let the Section IV decision tree predict machine choices.
 *  4. Deploy on the multi-accelerator model and inspect the report.
 *
 * Run: ./quickstart
 */

#include <iostream>

#include "core/heteromap.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "model/decision_tree.hh"
#include "util/logging.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main()
{
    setLogVerbose(false);

    // 1. An input graph: a small social-network-like R-MAT instance.
    Graph graph = generateRmat(/*scale=*/12, /*edge_factor=*/10.0,
                               /*seed=*/42);
    GraphStats stats = globalStatsCache().measure(graph);
    std::cout << "input graph: " << stats.toString() << "\n";

    // 2. A benchmark: PageRank, profiled on the graph. makeCase runs
    //    the instrumented algorithm and extracts the (B, I) features.
    auto workload = makeWorkload("PR");
    BenchmarkCase bench = makeCase(*workload, graph, "rmat12", stats);
    std::cout << "B = " << bench.features.b.toString() << "\n"
              << "I = " << bench.features.i.toString() << "\n"
              << "PageRank converged in " << bench.output.scalar
              << " iterations\n\n";

    // 3 + 4. HeteroMap with the analytical decision tree (no training
    //        needed) on the paper's primary accelerator pair.
    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);
    Deployment deployment = framework.deploy(bench);

    std::cout << "predicted machine choices: "
              << deployment.config.toString() << "\n"
              << "modelled execution:\n"
              << deployment.report.toString()
              << "predictor overhead: " << deployment.overheadMs
              << " ms\n";

    // Compare against the other accelerator to see the choice matter.
    MConfig other = deployment.config;
    if (other.accelerator == AcceleratorKind::Gpu) {
        other.accelerator = AcceleratorKind::Multicore;
        other.cores = primaryPair().multicore.cores;
        other.threadsPerCore = primaryPair().multicore.threadsPerCore;
        other.simdWidth = primaryPair().multicore.simdWidth;
    } else {
        other.accelerator = AcceleratorKind::Gpu;
        other.gpuGlobalThreads = primaryPair().gpu.maxGlobalThreads;
        other.gpuLocalThreads = 128;
    }
    double alt = oracle.seconds(bench, primaryPair(), other);
    std::cout << "\nthe other accelerator would take "
              << alt * 1e3 << " ms (selected: "
              << deployment.report.seconds * 1e3 << " ms)\n";
    return 0;
}
