/**
 * @file
 * Streaming analytics example (Sec. II): a graph larger than the
 * accelerator's memory is split into Stinger-style chunks; each chunk
 * is featurized and HeteroMap picks per-chunk machine choices —
 * demonstrating that the predictor adapts as chunk characteristics
 * drift (dense head chunks vs sparse tail chunks of a skewed graph).
 *
 * Run: ./streaming_analytics
 */

#include <iostream>

#include "core/heteromap.hh"
#include "graph/chunker.hh"
#include "graph/generators.hh"
#include "graph/props.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main()
{
    setLogVerbose(false);

    // A skewed social graph: hubs live at low vertex ids, so the
    // leading chunks are dense and the trailing ones sparse.
    Graph graph = generateRmat(14, 12.0, 7);
    std::cout << "full graph: " << measureGraph(graph).toString()
              << " (" << (graph.footprintBytes() >> 10) << " KB)\n";

    // Chunk to a quarter of the graph's footprint, as if the device
    // memory could not hold it whole.
    GraphChunker chunker(graph, graph.footprintBytes() / 4);
    std::cout << "streaming in " << chunker.numChunks()
              << " chunks\n\n";

    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);
    auto workload = makeWorkload("CONN");

    TextTable table({"chunk", "#V", "#E", "avg deg", "choice",
                     "modelled ms"});
    double total_ms = 0.0;
    for (std::size_t i = 0; i < chunker.numChunks(); ++i) {
        GraphChunk chunk = chunker.chunk(i);
        GraphStats stats = measureGraph(chunk.subgraph, 2);

        BenchmarkCase bench =
            makeCase(*workload, chunk.subgraph,
                     "chunk" + std::to_string(i), stats);
        Deployment deployment = framework.deploy(bench);
        total_ms += deployment.totalSeconds() * 1e3;

        table.addRow({
            std::to_string(i),
            formatCount(stats.numVertices),
            formatCount(stats.numEdges),
            formatNumber(stats.avgDegree, 1),
            acceleratorKindName(deployment.config.accelerator),
            formatNumber(deployment.report.seconds * 1e3, 4),
        });
    }
    table.print(std::cout);
    std::cout << "\ntotal streamed completion: "
              << formatNumber(total_ms, 3) << " ms\n";
    return 0;
}
