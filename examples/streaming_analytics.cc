/**
 * @file
 * Streaming analytics example (Sec. II): a graph larger than the
 * accelerator's memory is split into Stinger-style chunks; each chunk
 * is featurized and HeteroMap picks per-chunk machine choices —
 * demonstrating that the predictor adapts as chunk characteristics
 * drift (dense head chunks vs sparse tail chunks of a skewed graph).
 *
 * Chunk measurement goes through the global GraphStats cache: the
 * first epoch over the stream measures each chunk cold, and every
 * later epoch re-cuts structurally identical chunks whose stats hit
 * the cache — the steady-state streaming loop pays (almost) nothing
 * for property collection.
 *
 * Run: ./streaming_analytics
 */

#include <iostream>

#include "core/heteromap.hh"
#include "graph/chunker.hh"
#include "graph/generators.hh"
#include "graph/stats_cache.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "workloads/registry.hh"

using namespace heteromap;

int
main()
{
    setLogVerbose(false);

    // A skewed social graph: hubs live at low vertex ids, so the
    // leading chunks are dense and the trailing ones sparse.
    Graph graph = generateRmat(14, 12.0, 7);
    std::cout << "full graph: "
              << globalStatsCache().measure(graph).toString() << " ("
              << (graph.footprintBytes() >> 10) << " KB)\n";

    // Chunk to a quarter of the graph's footprint, as if the device
    // memory could not hold it whole.
    GraphChunker chunker(graph, graph.footprintBytes() / 4);
    std::cout << "streaming in " << chunker.numChunks()
              << " chunks\n\n";

    Oracle oracle;
    HeteroMap framework(primaryPair(),
                        makePredictor(PredictorKind::DecisionTree),
                        oracle);
    auto workload = makeWorkload("CONN");
    MeasureOptions chunk_measure;
    chunk_measure.sweeps = 2;

    GraphStatsCache &cache = globalStatsCache();
    constexpr int kEpochs = 3;
    TextTable table({"chunk", "#V", "#E", "avg deg", "choice",
                     "modelled ms"});

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        const uint64_t hits_before = cache.hits();
        Timer measure_timer;
        double measure_ms = 0.0;
        double total_ms = 0.0;

        for (std::size_t i = 0; i < chunker.numChunks(); ++i) {
            GraphChunk chunk = chunker.chunk(i);
            // Memoized: epoch 0 measures cold; later epochs re-cut
            // the same chunk content and hit the cache.
            measure_timer.start();
            GraphStats stats =
                cache.measure(chunk.subgraph, chunk_measure);
            measure_ms += measure_timer.elapsedMillis();

            BenchmarkCase bench =
                makeCase(*workload, chunk.subgraph,
                         "chunk" + std::to_string(i), stats);
            Deployment deployment = framework.deploy(bench);
            total_ms += deployment.totalSeconds() * 1e3;

            if (epoch == 0) {
                table.addRow({
                    std::to_string(i),
                    formatCount(stats.numVertices),
                    formatCount(stats.numEdges),
                    formatNumber(stats.avgDegree, 1),
                    acceleratorKindName(
                        deployment.config.accelerator),
                    formatNumber(deployment.report.seconds * 1e3, 4),
                });
            }
        }

        if (epoch == 0) {
            table.print(std::cout);
            std::cout << "\n";
        }
        std::cout << "epoch " << epoch << ": streamed completion "
                  << formatNumber(total_ms, 3) << " ms, measurement "
                  << formatNumber(measure_ms, 3) << " ms ("
                  << (cache.hits() - hits_before) << "/"
                  << chunker.numChunks() << " chunk stats cached)\n";
    }
    return 0;
}
